package bounds

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

// randTable builds either a shared or per-dimension table over random
// equi-depth histograms, mirroring what the engine constructs.
func randTable(rng *rand.Rand, dim, tau int, perDim bool) (*Table, vec.Domain) {
	const ndom = 512
	dom := vec.NewDomain(-1, 2, ndom)
	b := histogram.MaxBucketsForCodeLen(tau, ndom)
	freq := func() []float64 {
		f := make([]float64, ndom)
		for i := range f {
			f[i] = rng.Float64()
		}
		return f
	}
	if !perDim {
		return NewTable(histogram.EquiDepth(freq(), b), dom, dim), dom
	}
	freqs := make([][]float64, dim)
	for j := range freqs {
		freqs[j] = freq()
	}
	p := histogram.BuildPerDim(freqs, b, func(f []float64, b int) *histogram.Histogram {
		return histogram.EquiDepth(f, b)
	})
	return NewTablePerDim(p, dom), dom
}

// TestLUTMatchesReferenceExactly is the tentpole invariant: for random
// histograms, queries and codes, Bounds ≡ BoundsPacked ≡ the LUT fast path
// bitwise (same float64 sums, hence identical sqrt), across shared and
// per-dimension tables and every τ including the 8/16 specializations.
func TestLUTMatchesReferenceExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(40)
		tau := 1 + rng.Intn(12)
		if trial%5 == 0 {
			tau = 8 // exercise the byte fast path often
		}
		if trial%7 == 0 {
			tau = 16
		}
		perDim := trial%2 == 0
		tab, _ := randTable(rng, dim, tau, perDim)
		codec := encoding.NewCodec(dim, tau)
		q := make([]float32, dim)
		codes := make([]int, dim)
		for j := range q {
			q[j] = float32(rng.Float64()*3 - 1)
			loE, _ := tab.edgesFor(j)
			codes[j] = rng.Intn(len(loE))
		}
		words := codec.Encode(codes, nil)

		lbRef, ubRef := tab.Bounds(q, codes)
		lbP, ubP := tab.BoundsPacked(q, words, codec)
		if lbRef != lbP || ubRef != ubP {
			t.Fatalf("trial %d: Bounds (%v,%v) != BoundsPacked (%v,%v)", trial, lbRef, ubRef, lbP, ubP)
		}
		lbSqRef, ubSqRef := tab.BoundsSqPacked(q, words, codec)
		if math.Sqrt(lbSqRef) != lbRef || math.Sqrt(ubSqRef) != ubRef {
			t.Fatalf("trial %d: squared reference disagrees with sqrt path", trial)
		}

		lut := tab.BuildLUT(q, nil)
		lbSq, ubSq := lut.BoundsSqPacked(words, codec)
		if lbSq != lbSqRef || ubSq != ubSqRef {
			t.Fatalf("trial %d (dim=%d tau=%d perDim=%v): LUT packed (%v,%v) != reference (%v,%v)",
				trial, dim, tau, perDim, lbSq, ubSq, lbSqRef, ubSqRef)
		}
		lbSqU, ubSqU := lut.BoundsSq(codes)
		if lbSqU != lbSqRef || ubSqU != ubSqRef {
			t.Fatalf("trial %d: LUT unpacked (%v,%v) != reference (%v,%v)", trial, lbSqU, ubSqU, lbSqRef, ubSqRef)
		}
	}
}

// TestBoundsSqPackedRangeMatchesPerPoint checks the batch leaf-scoring form
// against per-point BoundsSqPacked on a packed run of points: same floats,
// every stride and τ.
func TestBoundsSqPackedRangeMatchesPerPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(32)
		tau := []int{5, 8, 16}[rng.Intn(3)]
		tab, _ := randTable(rng, dim, tau, trial%2 == 0)
		codec := encoding.NewCodec(dim, tau)
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.Float64()*3 - 1)
		}
		n := 1 + rng.Intn(20)
		words := make([]uint64, n*codec.Words())
		codes := make([]int, dim)
		for i := 0; i < n; i++ {
			for j := range codes {
				loE, _ := tab.edgesFor(j)
				codes[j] = rng.Intn(len(loE))
			}
			codec.Encode(codes, words[i*codec.Words():(i+1)*codec.Words()])
		}
		lut := tab.BuildLUT(q, nil)
		lbs := make([]float64, n)
		ubs := make([]float64, n)
		lut.BoundsSqPackedRange(words, n, codec, lbs, ubs)
		for i := 0; i < n; i++ {
			wantLB, wantUB := lut.BoundsSqPacked(words[i*codec.Words():(i+1)*codec.Words()], codec)
			if lbs[i] != wantLB || ubs[i] != wantUB {
				t.Fatalf("trial %d point %d: range (%v,%v) != per-point (%v,%v)",
					trial, i, lbs[i], ubs[i], wantLB, wantUB)
			}
		}
	}
}

// TestBuildLUTReusesStorage verifies the scratch-reuse contract the engine's
// pool relies on: rebuilding into an existing LUT must not allocate when the
// shape is unchanged, and must produce the same values as a fresh build.
func TestBuildLUTReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab, _ := randTable(rng, 24, 8, true)
	codec := encoding.NewCodec(24, 8)
	q1 := make([]float32, 24)
	q2 := make([]float32, 24)
	codes := make([]int, 24)
	for j := range q1 {
		q1[j] = rng.Float32()
		q2[j] = rng.Float32() * 2
		loE, _ := tab.edgesFor(j)
		codes[j] = rng.Intn(len(loE))
	}
	words := codec.Encode(codes, nil)

	lut := tab.BuildLUT(q1, nil)
	allocs := testing.AllocsPerRun(50, func() {
		tab.BuildLUT(q2, lut)
	})
	if allocs != 0 {
		t.Fatalf("BuildLUT into sized scratch allocated %v/op", allocs)
	}
	fresh := tab.BuildLUT(q2, nil)
	gl, gu := lut.BoundsSqPacked(words, codec)
	wl, wu := fresh.BoundsSqPacked(words, codec)
	if gl != wl || gu != wu {
		t.Fatalf("reused LUT (%v,%v) != fresh (%v,%v)", gl, gu, wl, wu)
	}
	if lut.Dim() != 24 || lut.Buckets() != tab.Buckets() {
		t.Fatalf("LUT shape %dx%d, want %dx%d", lut.Dim(), lut.Buckets(), 24, tab.Buckets())
	}
}

// TestRectSqAgreesWithRect pins the squared rectangle path used by mHC-R.
func TestRectSqAgreesWithRect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(20)
		q := make([]float32, dim)
		lo := make([]float32, dim)
		hi := make([]float32, dim)
		for j := range q {
			q[j] = rng.Float32()*4 - 2
			a, b := rng.Float32(), rng.Float32()
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		lb, ub := Rect(q, lo, hi)
		lbSq, ubSq := RectSq(q, lo, hi)
		if math.Sqrt(lbSq) != lb || math.Sqrt(ubSq) != ub {
			t.Fatalf("RectSq (%v,%v) disagrees with Rect (%v,%v)", lbSq, ubSq, lb, ub)
		}
		if lb > ub {
			t.Fatalf("lb %v > ub %v", lb, ub)
		}
	}
}
