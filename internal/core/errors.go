// Typed errors of the sharded serving path. A shard-level failure keeps its
// shard identity and the underlying disk classification as it travels up to
// the server, so the HTTP layer can answer transient faults with 503 +
// Retry-After and permanent ones with quarantine/degrade decisions instead of
// a blanket 500.
package core

import (
	"errors"
	"fmt"
)

// ErrShardQuarantined marks a query that touched a quarantined shard while
// degraded serving was disabled: the query is refused rather than silently
// answered with a partial result set.
var ErrShardQuarantined = errors.New("core: shard quarantined")

// ShardError attributes a search failure to the shard whose storage produced
// it. It wraps the underlying error, so disk.IsTransient/IsPermanent and
// errors.Is(ErrShardQuarantined) keep working through it.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("core: shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }
