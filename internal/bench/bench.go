// Package bench regenerates every table and figure of the paper's
// experimental study (Section 5) on the scaled synthetic stand-ins of the
// three datasets, plus ablation experiments for the design choices called
// out in DESIGN.md §5. Each experiment prints rows shaped like the paper's
// exhibit; EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"exploitbit"
	"exploitbit/internal/dataset"
)

// Scale sizes the experiment fixtures. The paper's datasets are 267K–8.3M
// points; the harness defaults stay laptop-friendly while preserving every
// relative comparison.
type Scale struct {
	NNusw, NImgn, NSogou int // dataset cardinalities
	PoolSize, WLLen      int // distinct queries and log length
	QTest                int // test queries (paper: 50)
	K                    int // default result size (paper: 10)
	Tau                  int // default code length (paper: 10; here 8 over Ndom=1024)
	CacheFrac            float64
}

// Quick is the scale used by `go test -bench` — every experiment in seconds.
var Quick = Scale{
	NNusw: 4000, NImgn: 8000, NSogou: 1500,
	PoolSize: 300, WLLen: 1200, QTest: 20,
	K: 10, Tau: 8, CacheFrac: 0.25,
}

// Full is the cmd/ebc-bench default: larger fixtures, same shapes. The
// query pool grows with the datasets — a realistic log's distinct-query
// working set far exceeds the cache, which is what makes EXACT caching miss
// (the paper's SOGOU log behaves this way).
var Full = Scale{
	NNusw: 20000, NImgn: 40000, NSogou: 6000,
	PoolSize: 4000, WLLen: 12000, QTest: 50,
	K: 10, Tau: 8, CacheFrac: 0.25,
}

// Lab is one dataset's full experimental fixture: disk layout, C2LSH index,
// workload profile and test queries.
type Lab struct {
	Name  string
	DS    *exploitbit.Dataset
	Sys   *exploitbit.System
	WL    [][]float32
	QTest [][]float32
	// DefaultCS is the default cache size (CacheFrac of the point file).
	DefaultCS int64
	// DefaultTau is the cost-model-chosen code length at DefaultCS — the
	// paper's Section 5.1 protocol ("the default code length is estimated
	// by using our equations in Section 4").
	DefaultTau int
}

// Env lazily builds and caches labs; experiments share them.
type Env struct {
	Scale Scale
	// Tio is the simulated I/O latency used for reported times. It is
	// accounting-only (never slept), so large values are free.
	Tio time.Duration
	Dir string

	mu   sync.Mutex
	labs map[string]*Lab
}

// NewEnv creates an experiment environment; dir holds the disk files
// (empty = temp dir per lab).
func NewEnv(scale Scale, dir string) *Env {
	return &Env{Scale: scale, Tio: 5 * time.Millisecond, Dir: dir, labs: make(map[string]*Lab)}
}

// Lab returns the named dataset fixture, building it on first use.
// Names: "NUS-WIDE", "IMGNET", "SOGOU".
func (e *Env) Lab(name string) *Lab {
	e.mu.Lock()
	defer e.mu.Unlock()
	if lab, ok := e.labs[name]; ok {
		return lab
	}
	lab := e.buildLab(name)
	e.labs[name] = lab
	return lab
}

func (e *Env) buildLab(name string) *Lab {
	s := e.Scale
	var ds *exploitbit.Dataset
	switch name {
	case "NUS-WIDE":
		ds = exploitbit.NUSWideLike(s.NNusw, 101)
	case "IMGNET":
		ds = exploitbit.ImgNetLike(s.NImgn, 102)
	case "SOGOU":
		ds = exploitbit.SogouLike(s.NSogou, 103)
	default:
		panic("bench: unknown lab " + name)
	}
	log := dataset.GenLog(ds, dataset.LogConfig{
		PoolSize: s.PoolSize, Length: s.WLLen + s.QTest, ZipfS: 1.3, Perturb: 0.005, Seed: 104,
	})
	wl, qtest := log.Split(s.QTest)
	dir := e.Dir
	if dir != "" {
		dir = dir + "/" + name
		if err := os.MkdirAll(dir, 0o755); err != nil {
			panic(err)
		}
	}
	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{
		Dir: dir, Tio: e.Tio, WorkloadK: s.K,
	})
	if err != nil {
		panic(err)
	}
	fileBytes := int64(ds.Len()) * int64(ds.PointSize())
	lab := &Lab{
		Name: name, DS: ds, Sys: sys, WL: wl, QTest: qtest,
		DefaultCS: int64(float64(fileBytes) * s.CacheFrac),
	}
	lab.DefaultTau = sys.OptimalTau(lab.DefaultCS)
	return lab
}

// Close releases every built lab.
func (e *Env) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, lab := range e.labs {
		lab.Sys.Close()
	}
	e.labs = make(map[string]*Lab)
}

// RunQueries executes every test query at k and returns the aggregate.
func (l *Lab) RunQueries(eng *exploitbit.Engine, k int) exploitbit.Aggregate {
	eng.ResetStats()
	for _, q := range l.QTest {
		if _, _, err := eng.Search(q, k); err != nil {
			panic(err)
		}
	}
	return eng.Aggregate()
}

// Experiment is one reproducible exhibit.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, env *Env) error
}

var registry []Experiment

func register(id, title string, run func(w io.Writer, env *Env) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, ex := range registry {
		if ex.ID == id {
			return ex, true
		}
	}
	return Experiment{}, false
}

// Run executes one experiment by id.
func Run(w io.Writer, env *Env, id string) error {
	ex, ok := Find(id)
	if !ok {
		ids := make([]string, 0, len(registry))
		for _, e := range registry {
			ids = append(ids, e.ID)
		}
		sort.Strings(ids)
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
	}
	fmt.Fprintf(w, "== %s — %s ==\n", ex.ID, ex.Title)
	return ex.Run(w, env)
}

// RunAll executes every experiment.
func RunAll(w io.Writer, env *Env) error {
	for _, ex := range registry {
		fmt.Fprintf(w, "\n== %s — %s ==\n", ex.ID, ex.Title)
		if err := ex.Run(w, env); err != nil {
			return fmt.Errorf("bench: %s: %w", ex.ID, err)
		}
	}
	return nil
}

// genLogFor builds a query log over ds with the environment's standard
// parameters (used by experiments that need their own dataset).
func genLogFor(ds *exploitbit.Dataset, s Scale) *dataset.Log {
	return dataset.GenLog(ds, dataset.LogConfig{
		PoolSize: s.PoolSize, Length: s.WLLen + s.QTest, ZipfS: 1.3, Perturb: 0.005, Seed: 104,
	})
}

// table starts a tabwriter for aligned experiment output.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// secs renders a duration in seconds with fixed precision.
func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// mb renders a byte count in MB.
func mb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
