package multistep

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"exploitbit/internal/vec"
)

// testWorld builds a random point set and a fetcher over it.
func testWorld(rng *rand.Rand, n, dim int) ([][]float32, Fetch, *int) {
	pts := make([][]float32, n)
	for i := range pts {
		p := make([]float32, dim)
		for j := range p {
			p[j] = rng.Float32()
		}
		pts[i] = p
	}
	fetches := 0
	fetch := func(id int) ([]float32, error) {
		fetches++
		return pts[id], nil
	}
	return pts, fetch, &fetches
}

// looseBounds builds candidates with random-but-valid bounds around the true
// distances.
func looseBounds(rng *rand.Rand, q []float32, pts [][]float32, ids []int) []Candidate {
	cands := make([]Candidate, len(ids))
	for i, id := range ids {
		d := vec.Dist(q, pts[id])
		slack := rng.Float64() * 0.3
		cands[i] = Candidate{ID: id, LB: math.Max(0, d-slack), UB: d + rng.Float64()*0.3}
	}
	return cands
}

func TestSearchExactWithinCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(100)
		k := 1 + rng.Intn(10)
		pts, fetch, _ := testWorld(rng, n, 6)
		q := make([]float32, 6)
		for j := range q {
			q[j] = rng.Float32()
		}
		ids := rng.Perm(n)[:1+rng.Intn(n)]
		cands := looseBounds(rng, q, pts, ids)

		got, _, err := Search(q, cands, k, fetch)
		if err != nil {
			t.Fatal(err)
		}

		// Brute-force reference over the candidate set.
		type dd struct {
			id int
			d  float64
		}
		ref := make([]dd, len(ids))
		for i, id := range ids {
			ref[i] = dd{id, vec.Dist(q, pts[id])}
		}
		sort.Slice(ref, func(a, b int) bool { return ref[a].d < ref[b].d })
		want := k
		if len(ref) < k {
			want = len(ref)
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), want)
		}
		for i := 0; i < want; i++ {
			if math.Abs(got[i].Dist-ref[i].d) > 1e-9 {
				t.Fatalf("trial %d: result %d dist %v, want %v", trial, i, got[i].Dist, ref[i].d)
			}
		}
	}
}

func TestSearchFetchesFewerWithTighterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, fetch, fetches := testWorld(rng, 500, 8)
	q := make([]float32, 8)
	for j := range q {
		q[j] = rng.Float32()
	}
	ids := make([]int, 500)
	for i := range ids {
		ids[i] = i
	}

	// No bounds: every candidate must be fetched.
	loose := make([]Candidate, len(ids))
	for i, id := range ids {
		loose[i] = Candidate{ID: id, LB: 0, UB: math.Inf(1)}
	}
	*fetches = 0
	if _, n, err := Search(q, loose, 5, fetch); err != nil || n != 500 {
		t.Fatalf("unbounded search fetched %d (err %v), want all 500", n, err)
	}

	// Tight bounds (exact distances): fetches collapse to ~k.
	tight := make([]Candidate, len(ids))
	for i, id := range ids {
		d := vec.Dist(q, pts[id])
		tight[i] = Candidate{ID: id, LB: d, UB: d}
	}
	*fetches = 0
	res, n, err := Search(q, tight, 5, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if n > 6 {
		t.Fatalf("tight-bound search fetched %d, want <= 6", n)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestSearchStopsOptimally(t *testing.T) {
	// Candidates in two groups: k with tiny lb/dist, the rest with lb far
	// above; only the close group may be fetched.
	q := []float32{0, 0}
	pts := [][]float32{{0.1, 0}, {0, 0.1}, {5, 5}, {6, 6}, {7, 7}}
	fetches := 0
	fetch := func(id int) ([]float32, error) {
		fetches++
		return pts[id], nil
	}
	cands := []Candidate{
		{ID: 0, LB: 0.05, UB: 0.2},
		{ID: 1, LB: 0.05, UB: 0.2},
		{ID: 2, LB: 7, UB: 8},
		{ID: 3, LB: 8, UB: 9},
		{ID: 4, LB: 9, UB: 10},
	}
	res, n, err := Search(q, cands, 2, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("fetched %d, want 2", n)
	}
	if res[0].ID != 0 && res[0].ID != 1 {
		t.Fatalf("wrong results: %+v", res)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	fetch := func(id int) ([]float32, error) { return []float32{0}, nil }
	// k < 1 returns nothing.
	if res, n, err := Search([]float32{0}, []Candidate{{ID: 1}}, 0, fetch); err != nil || n != 0 || res != nil {
		t.Fatalf("k=0: %v %d %v", res, n, err)
	}
	// Empty candidates.
	if res, n, err := Search([]float32{0}, nil, 3, fetch); err != nil || n != 0 || len(res) != 0 {
		t.Fatalf("empty: %v %d %v", res, n, err)
	}
	// Fetch error propagates.
	boom := errors.New("boom")
	bad := func(id int) ([]float32, error) { return nil, boom }
	if _, _, err := Search([]float32{0}, []Candidate{{ID: 1}}, 1, bad); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestSearchDoesNotMutateInput(t *testing.T) {
	cands := []Candidate{{ID: 2, LB: 3}, {ID: 1, LB: 1}, {ID: 0, LB: 2}}
	orig := append([]Candidate(nil), cands...)
	fetch := func(id int) ([]float32, error) { return []float32{float32(id)}, nil }
	if _, _, err := Search([]float32{0}, cands, 1, fetch); err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if cands[i] != orig[i] {
			t.Fatal("input candidates reordered")
		}
	}
}

func TestKthSmallest(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := KthSmallest(xs, 2); got != 2 {
		t.Fatalf("got %v", got)
	}
	if got := KthSmallest(xs, 5); got != 5 {
		t.Fatalf("got %v", got)
	}
	if !math.IsInf(KthSmallest(xs, 6), 1) {
		t.Fatal("k beyond len should be +Inf")
	}
	if !math.IsInf(KthSmallest(nil, 1), 1) {
		t.Fatal("empty should be +Inf")
	}
	if !math.IsInf(KthSmallest(xs, 0), 1) {
		t.Fatal("k=0 should be +Inf")
	}
}
