// Package server exposes a cached kNN engine over HTTP — the shape a
// multimedia-retrieval deployment of the paper's system takes: the engine
// (with its histogram cache) lives in one process, front-ends POST feature
// vectors and get back neighbor identifiers plus the cache telemetry that
// Section 5 reports.
//
// Endpoints:
//
//	POST /search  {"vector": [...], "k": 10} → {"ids": [...], "stats": {...}}
//	GET  /stats   aggregate statistics since startup
//	GET  /healthz liveness
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Searcher is the engine-shaped dependency (core.Engine and core.Maintainer
// both satisfy it via small adapters; the facade wires them).
type Searcher interface {
	Search(q []float32, k int) ([]int, Stats, error)
}

// Stats is the per-query statistics subset exposed over the wire.
type Stats struct {
	Candidates  int           `json:"candidates"`
	Hits        int           `json:"cache_hits"`
	Pruned      int           `json:"pruned"`
	TrueHits    int           `json:"true_hits"`
	Fetched     int           `json:"fetched"`
	PageReads   int64         `json:"page_reads"`
	SimulatedIO time.Duration `json:"simulated_io_ns"`
}

// Handler serves the HTTP API. The aggregate counters are lock-free
// atomics: under concurrent load every request used to serialize on one
// mutex just to bump four integers, which is exactly the kind of contention
// the allocation-free engine path removes elsewhere.
type Handler struct {
	mux      *http.ServeMux
	searcher Searcher
	dim      int
	maxK     int

	queries atomic.Int64
	fetched atomic.Int64
	hits    atomic.Int64
	cands   atomic.Int64

	rebuildStats func() RebuildStats
}

// RebuildStats reports the maintainer's background cache-rebuild activity
// over /stats, so operators can watch non-blocking rebuilds (and their
// failures) without scraping logs.
type RebuildStats struct {
	Rebuilds        int  `json:"rebuilds"`
	RebuildErrors   int  `json:"rebuild_errors"`
	RebuildInFlight bool `json:"rebuild_in_flight"`
}

// SetRebuildStats registers a snapshot source for maintainer rebuild
// telemetry; /stats then carries a "maintain" object. Call before serving.
func (h *Handler) SetRebuildStats(fn func() RebuildStats) { h.rebuildStats = fn }

// New builds the handler. dim validates request vectors; maxK caps k
// (default 1000).
func New(s Searcher, dim, maxK int) *Handler {
	if maxK < 1 {
		maxK = 1000
	}
	h := &Handler{mux: http.NewServeMux(), searcher: s, dim: dim, maxK: maxK}
	h.mux.HandleFunc("POST /search", h.handleSearch)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
}

type searchResponse struct {
	IDs   []int `json:"ids"`
	Stats Stats `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (h *Handler) fail(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Vector) != h.dim {
		h.fail(w, http.StatusBadRequest, "vector has %d dimensions, engine serves %d", len(req.Vector), h.dim)
		return
	}
	if req.K < 1 || req.K > h.maxK {
		h.fail(w, http.StatusBadRequest, "k must be in [1, %d], got %d", h.maxK, req.K)
		return
	}
	ids, st, err := h.searcher.Search(req.Vector, req.K)
	if err != nil {
		h.fail(w, http.StatusInternalServerError, "search failed: %v", err)
		return
	}
	h.queries.Add(1)
	h.fetched.Add(int64(st.Fetched))
	h.hits.Add(int64(st.Hits))
	h.cands.Add(int64(st.Candidates))

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(searchResponse{IDs: ids, Stats: st})
}

type statsResponse struct {
	Queries     int64         `json:"queries"`
	AvgFetched  float64       `json:"avg_fetched"`
	HitRatio    float64       `json:"hit_ratio"`
	AvgCandSize float64       `json:"avg_candidates"`
	Maintain    *RebuildStats `json:"maintain,omitempty"`
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	queries := h.queries.Load()
	fetched := h.fetched.Load()
	hits := h.hits.Load()
	cands := h.cands.Load()
	resp := statsResponse{Queries: queries}
	if queries > 0 {
		resp.AvgFetched = float64(fetched) / float64(queries)
		resp.AvgCandSize = float64(cands) / float64(queries)
	}
	if cands > 0 {
		resp.HitRatio = float64(hits) / float64(cands)
	}
	if h.rebuildStats != nil {
		rs := h.rebuildStats()
		resp.Maintain = &rs
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
