package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exploitbit/internal/costmodel"
	"exploitbit/internal/disk"
)

// ShardedMaintainer is Section 3.5's maintenance applied per shard: every
// shard unit runs its own drift detector over the slice of each query's
// statistics it served, and a drifting shard rebuilds *only its own* cache
// in the background — the RCU swap replaces one shard's engine while every
// other shard keeps serving untouched. One hot shard therefore never
// freezes, or triggers rebuild work on, the cold ones.
//
// A shard rebuild profiles the drift window against the shard-filtered
// candidate generator and rebuilds the shard engine with its own
// shard-local histogram over the shard's slice of the cache budget. The
// rebuilt shard's bounds stay correct and conservative for every query;
// bit-identity with a monolithic unsharded engine is pinned for freshly
// constructed systems, not across divergent drift histories (the unsharded
// maintainer rebuilds from its own window too).
type ShardedMaintainer struct {
	se  *ShardedEngine
	cfg Config
	opt MaintainOptions
	k   int

	specs []ShardSpec

	// build constructs shard s's replacement engine from a window of
	// queries at a code length. A field so tests can inject failures;
	// default buildShard.
	build func(s int, wl [][]float32, k, tau int) (*Engine, error)

	slots []*shardMaintSlot

	rebuildGate chan struct{}

	lifeMu sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// perShard pools the per-query []QueryStats scatter buffer.
	perShard sync.Pool
}

// shardMaintSlot is one shard's maintenance state.
type shardMaintSlot struct {
	mu    sync.Mutex
	drift driftState
	adapt adaptWindow

	rebuilding  atomic.Bool
	rebuildMu   sync.Mutex
	rebuilds    atomic.Int64
	rebuildErrs atomic.Int64
	lastWallNs  atomic.Int64
	lastAtNs    atomic.Int64
	quarantines atomic.Int64 // quarantine-triggered rebuild launches

	// Adaptive-τ state, mirroring Maintainer: tau is this shard's serving
	// code length, monitor its own drift watchdog (nil unless adaptive), and
	// evaluating its one-at-a-time background evaluation guard. Shards drift
	// — and retune — independently; a hot shard can move to a different τ
	// while the cold ones keep theirs.
	tau        atomic.Int64
	retunes    atomic.Int64
	monitor    *costmodel.Monitor
	evaluating atomic.Bool
}

// NewShardedMaintainer builds the sharded engine and arms one drift
// detector per shard. k is the profiling depth used for rebuilds.
func NewShardedMaintainer(specs []ShardSpec, owner, local []int32, prof *Profile, cands CandidateFunc, k int, cfg Config, opt MaintainOptions) (*ShardedMaintainer, error) {
	opt = opt.withDefaults()
	se, err := NewShardedEngine(specs, owner, local, prof, cands, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: initial sharded maintained engine: %w", err)
	}
	m := &ShardedMaintainer{
		se: se, cfg: cfg, opt: opt, k: k,
		specs:       specs,
		rebuildGate: opt.RebuildGate,
	}
	m.build = m.buildShard
	tau := cfg.withDefaults().Tau
	for range specs {
		slot := &shardMaintSlot{drift: newDriftState(opt)}
		slot.tau.Store(int64(tau))
		if opt.AdaptiveTau {
			slot.adapt.size = opt.WindowSize
			slot.monitor = costmodel.NewMonitor(tau, costmodel.MonitorConfig{
				Threshold: opt.RetuneThreshold,
				Windows:   opt.RetuneWindows,
			})
		}
		m.slots = append(m.slots, slot)
	}
	m.perShard.New = func() any { return make([]QueryStats, len(specs)) }
	return m, nil
}

// Sharded returns the underlying sharded engine (for stats wiring and
// inspection).
func (m *ShardedMaintainer) Sharded() *ShardedEngine { return m.se }

// Engine returns shard s's currently serving engine.
func (m *ShardedMaintainer) Engine(s int) *Engine { return m.se.Engine(s) }

// DiskStats sums device counters across every shard's point file.
func (m *ShardedMaintainer) DiskStats() disk.Stats { return m.se.DiskStats() }

// buildShard is the default per-shard rebuild: profile the window against
// the shard's filtered candidate generator and construct a standalone
// engine over the shard's point file under its proportional share of the
// cache budget. The replacement builds its own shard-local histogram — the
// global model describes the workload the system started with, while the
// rebuild's whole point is to follow what this shard serves now.
func (m *ShardedMaintainer) buildShard(s int, wl [][]float32, k, tau int) (*Engine, error) {
	spec := m.specs[s]
	scands := m.se.ShardCandidates(s)
	prof := BuildProfile(spec.DS, scands, wl, k)
	cfg := m.cfg
	cfg.Tau = tau
	cfg.CacheBytes = m.shardBudget(s)
	// The replacement's model is shard-local (profile over the shard
	// dataset), so its bucket lookups expect local ids: globalIDs stays
	// nil, unlike the shared-model engines NewShardedEngine builds.
	return NewEngine(spec.PF, prof, scands, cfg)
}

// shardBudget is shard s's proportional slice of the cache budget.
func (m *ShardedMaintainer) shardBudget(s int) int64 {
	return m.cfg.CacheBytes * int64(m.specs[s].DS.Len()) / int64(len(m.se.owner))
}

// shardTau returns shard s's serving code length.
func (m *ShardedMaintainer) shardTau(s int) int { return int(m.slots[s].tau.Load()) }

// Search serves one query; see SearchIntoCtx.
func (m *ShardedMaintainer) Search(q []float32, k int) ([]int, QueryStats, error) {
	return m.SearchIntoCtx(context.Background(), q, k, nil)
}

// SearchCtx is Search under a request context.
func (m *ShardedMaintainer) SearchCtx(ctx context.Context, q []float32, k int) ([]int, QueryStats, error) {
	return m.SearchIntoCtx(ctx, q, k, nil)
}

// SearchInto is Search appending result identifiers to dst.
func (m *ShardedMaintainer) SearchInto(q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return m.SearchIntoCtx(context.Background(), q, k, dst)
}

// SearchIntoCtx serves one query through the sharded engine and folds the
// per-shard statistics slices into each engaged shard's drift window,
// launching that shard's background rebuild when its window trips.
// Abandoned queries never enter any window.
func (m *ShardedMaintainer) SearchIntoCtx(ctx context.Context, q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return m.SearchMergedIntoCtx(ctx, q, k, dst, nil)
}

// SearchMergedIntoCtx is SearchIntoCtx with the live-ingest overlay folded
// into the scatter-gather search (see Merge). Merged queries feed the
// per-shard drift windows like plain ones.
func (m *ShardedMaintainer) SearchMergedIntoCtx(ctx context.Context, q []float32, k int, dst []int, mg *Merge) ([]int, QueryStats, error) {
	per := m.perShard.Get().([]QueryStats)
	defer m.perShard.Put(per)
	ids, st, err := m.se.searchMergedIntoCtxStats(ctx, q, k, dst, per, mg)
	if err != nil {
		return nil, st, err
	}
	if st.Degraded {
		m.noteShardFailures(q, st.FailedShards)
	}
	m.recordShards(q, per, k)
	return ids, st, nil
}

// noteShardFailures reacts to a degraded query: every shard it served around
// gets a quarantine rebuild launched (at most one in flight per shard — the
// rebuilding CAS absorbs the storm of degraded queries that follow a
// failure). The rebuild runs from the shard's drift window, falling back to
// the failing query itself when the window is empty, and clears the
// quarantine only if it succeeds; a failed rebuild leaves the shard
// quarantined and the next degraded query tries again.
func (m *ShardedMaintainer) noteShardFailures(q []float32, failed []int) {
	for _, s := range failed {
		if !m.se.Quarantined(s) {
			continue // already rebuilt by the time we got here
		}
		slot := m.slots[s]
		if !slot.rebuilding.CompareAndSwap(false, true) {
			continue // rebuild already in flight
		}
		slot.mu.Lock()
		wl := slot.drift.snapshot()
		slot.mu.Unlock()
		if len(wl) == 0 {
			wl = [][]float32{append([]float32(nil), q...)}
		}
		slot.quarantines.Add(1)
		m.launchRebuild(s, wl, m.k, m.shardTau(s), false)
	}
}

// SearchBatch is the maintained sharded batch search; see SearchBatchCtx.
func (m *ShardedMaintainer) SearchBatch(qs [][]float32, k int) ([][]int, []QueryStats, error) {
	return m.SearchBatchCtx(context.Background(), qs, k)
}

// SearchBatchCtx runs the batch through the sharded engine and folds every
// served query into the engaged shards' drift windows.
func (m *ShardedMaintainer) SearchBatchCtx(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error) {
	per := make([][]QueryStats, len(qs))
	for j := range per {
		per[j] = make([]QueryStats, len(m.slots))
	}
	results, sts, err := m.se.searchBatchCtxStats(ctx, qs, k, per)
	if err != nil {
		return nil, nil, err
	}
	for j, q := range qs {
		if sts[j].Degraded {
			m.noteShardFailures(q, sts[j].FailedShards)
		}
		m.recordShards(q, per[j], k)
	}
	return results, sts, nil
}

// recordShards feeds one query's per-shard statistics into the drift
// detectors — and, when adaptive, the watchdog windows — of the shards that
// served it.
func (m *ShardedMaintainer) recordShards(q []float32, per []QueryStats, k int) {
	for s, ps := range per {
		if ps.Candidates == 0 && ps.Fetched == 0 {
			continue // the query never touched this shard
		}
		slot := m.slots[s]
		slot.mu.Lock()
		wl := slot.drift.record(q, ps, func() bool { return slot.rebuilding.CompareAndSwap(false, true) })
		var sig maintSignal
		if slot.monitor != nil {
			if hit, ref, done := slot.adapt.add(ps); done {
				sig.obsHit, sig.obsRefine = hit, ref
				sig.evalWL = slot.drift.snapshot()
			}
		}
		slot.mu.Unlock()
		if wl != nil {
			m.launchRebuild(s, wl, k, m.shardTau(s), false)
		}
		if sig.evalWL != nil {
			m.launchEvaluate(s, sig.obsHit, sig.obsRefine, sig.evalWL)
		}
	}
}

// launchEvaluate runs shard s's watchdog window evaluation in the
// background, mirroring Maintainer.launchEvaluate: re-profile the window
// against the shard-filtered candidate generator, fold into the shard's
// monitor, and launch a retune rebuild at the recommended τ when the
// decision fires. One evaluation per shard at a time; completed windows are
// skipped while one is in flight.
func (m *ShardedMaintainer) launchEvaluate(s int, obsHit, obsRefine float64, wl [][]float32) {
	slot := m.slots[s]
	if !slot.evaluating.CompareAndSwap(false, true) {
		return
	}
	m.lifeMu.Lock()
	if m.closed {
		m.lifeMu.Unlock()
		slot.evaluating.Store(false)
		return
	}
	m.wg.Add(1)
	m.lifeMu.Unlock()
	go func() {
		defer m.wg.Done()
		defer slot.evaluating.Store(false)
		spec := m.specs[s]
		prof := BuildProfile(spec.DS, m.se.ShardCandidates(s), wl, m.k)
		in := adaptInputs(prof, spec.DS, m.shardBudget(s))
		d := slot.monitor.Observe(obsHit, obsRefine, in)
		if d.Retune && slot.rebuilding.CompareAndSwap(false, true) {
			m.launchRebuild(s, wl, m.k, d.Tau, true)
		}
	}()
}

// CostModels snapshots every adaptive shard's watchdog telemetry; entries
// are nil for shards without a monitor (non-adaptive maintainers return a
// slice of nils).
func (m *ShardedMaintainer) CostModels() []*costmodel.MonitorSnapshot {
	out := make([]*costmodel.MonitorSnapshot, len(m.slots))
	for s, slot := range m.slots {
		if slot.monitor != nil {
			snap := slot.monitor.Snapshot()
			out[s] = &snap
		}
	}
	return out
}

// launchRebuild starts shard s's background rebuild at code length tau
// (retuned marks a watchdog retune). The caller must have won that shard's
// rebuilding CAS; after Close the launch is refused.
func (m *ShardedMaintainer) launchRebuild(s int, wl [][]float32, k, tau int, retuned bool) {
	m.lifeMu.Lock()
	if m.closed {
		m.lifeMu.Unlock()
		m.slots[s].rebuilding.Store(false)
		return
	}
	m.wg.Add(1)
	m.lifeMu.Unlock()
	go func() {
		defer m.wg.Done()
		m.backgroundRebuild(s, wl, k, tau, retuned)
	}()
}

// backgroundRebuild rebuilds shard s off the search path and RCU-swaps the
// replacement in. Only this shard's engine pointer moves; the other shards
// and every in-flight query (which snapshotted its engines at entry) are
// untouched. A failed build bumps the shard's error counter and keeps the
// old engine serving.
func (m *ShardedMaintainer) backgroundRebuild(s int, wl [][]float32, k, tau int, retuned bool) {
	slot := m.slots[s]
	defer slot.rebuilding.Store(false)
	slot.rebuildMu.Lock()
	defer slot.rebuildMu.Unlock()
	if m.rebuildGate != nil {
		<-m.rebuildGate
	}
	start := time.Now()
	eng, err := m.build(s, wl, k, tau)
	if err != nil {
		slot.rebuildErrs.Add(1)
		return
	}
	m.install(s, eng, time.Since(start), tau, retuned)
}

// install publishes shard s's freshly built engine and resets its baseline.
// A successful install also lifts the shard's quarantine: the rebuilt engine
// starts with a clean bill until its storage proves otherwise.
func (m *ShardedMaintainer) install(s int, eng *Engine, wall time.Duration, tau int, retuned bool) {
	slot := m.slots[s]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	m.se.swapEngine(s, eng)
	m.se.ClearQuarantine(s)
	slot.rebuilds.Add(1)
	slot.tau.Store(int64(tau))
	if retuned {
		slot.retunes.Add(1)
	}
	slot.lastWallNs.Store(int64(wall))
	slot.lastAtNs.Store(time.Now().UnixNano())
	slot.drift.resetAfterInstall()
	slot.adapt.reset()
	if slot.monitor != nil {
		slot.monitor.NoteInstall(tau, retuned)
	}
}

// ForceShardRebuild rebuilds shard s synchronously from its current drift
// window, reporting any build error.
func (m *ShardedMaintainer) ForceShardRebuild(s int) error {
	slot := m.slots[s]
	slot.mu.Lock()
	wl := slot.drift.snapshot()
	slot.mu.Unlock()
	if len(wl) == 0 {
		return fmt.Errorf("core: shard %d has no recorded queries to rebuild from", s)
	}
	slot.rebuildMu.Lock()
	defer slot.rebuildMu.Unlock()
	start := time.Now()
	eng, err := m.build(s, wl, m.k, m.shardTau(s))
	if err != nil {
		slot.rebuildErrs.Add(1)
		return err
	}
	m.install(s, eng, time.Since(start), m.shardTau(s), false)
	return nil
}

// RebuildShardAsync launches shard s's background rebuild from its current
// window, returning false when one is already in flight, the window is
// empty, or the maintainer is closed.
func (m *ShardedMaintainer) RebuildShardAsync(s int) bool {
	m.lifeMu.Lock()
	closed := m.closed
	m.lifeMu.Unlock()
	if closed {
		return false
	}
	slot := m.slots[s]
	if !slot.rebuilding.CompareAndSwap(false, true) {
		return false
	}
	slot.mu.Lock()
	wl := slot.drift.snapshot()
	slot.mu.Unlock()
	if len(wl) == 0 {
		slot.rebuilding.Store(false)
		return false
	}
	m.launchRebuild(s, wl, m.k, m.shardTau(s), false)
	return true
}

// Close stops all background activity: no further rebuilds launch on any
// shard, and in-flight rebuilds are waited for (their swaps still land).
// Idempotent; searches keep serving the frozen engines.
func (m *ShardedMaintainer) Close() {
	m.lifeMu.Lock()
	m.closed = true
	m.lifeMu.Unlock()
	m.wg.Wait()
}

// Stats aggregates the per-shard rebuild activity: counts sum, in-flight is
// an OR, and the last-rebuild pair reflects the most recent swap anywhere.
func (m *ShardedMaintainer) Stats() MaintainStats {
	var st MaintainStats
	for s, slot := range m.slots {
		st.Rebuilds += int(slot.rebuilds.Load())
		st.RebuildErrors += int(slot.rebuildErrs.Load())
		st.RebuildInFlight = st.RebuildInFlight || slot.rebuilding.Load()
		st.Quarantines += int(slot.quarantines.Load())
		st.Quarantined = st.Quarantined || m.se.Quarantined(s)
		st.Retunes += int(slot.retunes.Load())
		if tau := m.shardTau(s); s == 0 {
			st.Tau = tau
		} else if st.Tau != tau {
			st.Tau = 0 // shards have retuned apart; per-shard stats disagree
		}
		if at := slot.lastAtNs.Load(); at > m.lastAtNs(st) {
			st.LastRebuildAt = time.Unix(0, at)
			st.LastRebuildWall = time.Duration(slot.lastWallNs.Load())
		}
	}
	return st
}

func (m *ShardedMaintainer) lastAtNs(st MaintainStats) int64 {
	if st.LastRebuildAt.IsZero() {
		return 0
	}
	return st.LastRebuildAt.UnixNano()
}

// ShardStats snapshots every shard's own rebuild activity.
func (m *ShardedMaintainer) ShardStats() []MaintainStats {
	out := make([]MaintainStats, len(m.slots))
	for s, slot := range m.slots {
		out[s] = MaintainStats{
			Rebuilds:        int(slot.rebuilds.Load()),
			RebuildErrors:   int(slot.rebuildErrs.Load()),
			RebuildInFlight: slot.rebuilding.Load(),
			Quarantines:     int(slot.quarantines.Load()),
			Quarantined:     m.se.Quarantined(s),
			Retunes:         int(slot.retunes.Load()),
			Tau:             m.shardTau(s),
		}
		if ns := slot.lastWallNs.Load(); ns > 0 {
			out[s].LastRebuildWall = time.Duration(ns)
		}
		if at := slot.lastAtNs.Load(); at > 0 {
			out[s].LastRebuildAt = time.Unix(0, at)
		}
	}
	return out
}
