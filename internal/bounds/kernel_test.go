package bounds

import (
	"math"
	"math/rand"
	"testing"

	"exploitbit/internal/encoding"
)

// TestSplitBoundsMatchFusedExactly pins the invariant the slab kernel's
// bit-identity proof rests on: the split halves (LowerSqPacked,
// UpperSqPacked) of both the Table and the LUT reproduce BoundsSqPacked's
// sums bitwise — same terms, same order — across shared and per-dimension
// tables and every τ including the 8/16 word-walking specializations.
func TestSplitBoundsMatchFusedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		dim := 1 + rng.Intn(40)
		tau := 1 + rng.Intn(16)
		if trial%5 == 0 {
			tau = 8 // exercise the byte fast path often
		}
		if trial%7 == 0 {
			tau = 16
		}
		perDim := trial%2 == 0
		tab, _ := randTable(rng, dim, tau, perDim)
		codec := encoding.NewCodec(dim, tau)
		q := make([]float32, dim)
		codes := make([]int, dim)
		for j := range q {
			q[j] = float32(rng.Float64()*3 - 1)
			loE, _ := tab.edgesFor(j)
			codes[j] = rng.Intn(len(loE))
		}
		words := codec.Encode(codes, nil)

		wantLB, wantUB := tab.BoundsSqPacked(q, words, codec)
		if lb := tab.LowerSqPacked(q, words, codec); lb != wantLB {
			t.Fatalf("trial %d (dim=%d tau=%d perDim=%v): Table.LowerSqPacked %v != %v",
				trial, dim, tau, perDim, lb, wantLB)
		}
		if ub := tab.UpperSqPacked(q, words, codec); ub != wantUB {
			t.Fatalf("trial %d (dim=%d tau=%d perDim=%v): Table.UpperSqPacked %v != %v",
				trial, dim, tau, perDim, ub, wantUB)
		}

		lut := tab.BuildLUT(q, nil)
		if lb := lut.LowerSqPacked(words, codec); lb != wantLB {
			t.Fatalf("trial %d: QueryLUT.LowerSqPacked %v != %v", trial, lb, wantLB)
		}
		if ub := lut.UpperSqPacked(words, codec); ub != wantUB {
			t.Fatalf("trial %d: QueryLUT.UpperSqPacked %v != %v", trial, ub, wantUB)
		}

		// Threshold contract: any return v is either the exact lower bound
		// (v ≤ thr allows no abandonment, so the scan must have completed) or
		// an abandoned partial sum with thr < v ≤ exact. Probe thresholds on
		// both sides of the exact value, plus the infinities.
		for _, thr := range []float64{
			math.Inf(-1), 0, wantLB * 0.25, wantLB * 0.75, wantLB, wantLB * 1.5, math.Inf(1),
		} {
			for _, got := range []float64{
				tab.LowerSqPackedThresh(q, words, codec, thr),
				lut.LowerSqPackedThresh(words, codec, thr),
			} {
				if got <= thr && got != wantLB {
					t.Fatalf("trial %d thr=%v: returned %v ≤ thr but exact is %v", trial, thr, got, wantLB)
				}
				if got > wantLB {
					t.Fatalf("trial %d thr=%v: returned %v exceeds exact lower bound %v", trial, thr, got, wantLB)
				}
				if got < wantLB && got <= thr {
					t.Fatalf("trial %d thr=%v: partial sum %v not above threshold", trial, thr, got)
				}
			}
		}
		// An unreachable threshold must never truncate the scan.
		if got := tab.LowerSqPackedThresh(q, words, codec, math.Inf(1)); got != wantLB {
			t.Fatalf("trial %d: +Inf threshold changed the result: %v != %v", trial, got, wantLB)
		}
	}
}
