package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"exploitbit/internal/bounds"
	"exploitbit/internal/cache"
	"exploitbit/internal/dataset"
	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/leafstore"
	"exploitbit/internal/multistep"
	"exploitbit/internal/vec"
)

// LeafIndex is the in-memory part of a tree-based index (Section 3.6.1):
// the leaf partition (point ids per leaf) and, per query, a conservative
// lower bound on the distance to any point of each leaf. iDistance, VP-tree
// and the STR R-tree all satisfy it.
type LeafIndex interface {
	Leaves() [][]int32
	LeafLowerBounds(q []float32) []float64
}

// leafBoundsInto is the allocation-free variant of LeafLowerBounds: the
// bounds are written into dst (grown only when undersized) and returned.
// Indexes that implement it let the tree engine's steady state avoid a
// per-query bound-slice allocation.
type leafBoundsInto interface {
	LeafLowerBoundsInto(q []float32, dst []float64) []float64
}

// TreeConfig selects how leaf nodes are cached.
type TreeConfig struct {
	// Method: Exact caches raw leaf vectors; HCO (or any HC-*) caches
	// approximate representations of the leaf's points; NoCache disables
	// caching.
	Method Method
	// CacheBytes is the cache budget CS.
	CacheBytes int64
	// Tau is the code length for approximate leaf caching (default 8).
	Tau int
	// SmoothEps as in Config.
	SmoothEps float64
	// LUTMinCachedPoints gates the per-query ADC lookup table for HC-*
	// leaf caches, mirroring Config.LUTMinCandidates: the LUT costs
	// O(dim·B) per query, so it only pays once enough approximate points
	// are cached. 0 means the default 2·B; negative disables the LUT.
	// Unlike the flat engine the cached population is fixed at build time,
	// so the gate is decided once, not per query.
	LUTMinCachedPoints int
}

// exactLeaf is the payload of the EXACT leaf cache.
type exactLeaf struct {
	pts [][]float32 // same order as the leaf directory's ids
}

// TreeEngine runs cached kNN search over a tree index per Section 3.6.1:
// leaf nodes are visited in ascending lower-bound order; cached leaves are
// examined in RAM (exact distances, or per-point bounds that tighten ub_k
// and defer fetching), uncached leaves are loaded from disk.
//
// Search is built from the same reduction core as the flat Engine
// (reduce.go): squared-space bounds end to end, candState partitioning for
// pruning and true-hit detection, pooled per-query scratch, optional LUT
// scoring, and lock-free aggregates. Refinement is group-granular: loading
// one leaf resolves every resident candidate at once
// (multistep.SearchGroupsSq).
type TreeEngine struct {
	ds    *dataset.Dataset
	ix    LeafIndex
	store *leafstore.Store
	cfg   TreeConfig

	// leaves is ix.Leaves() hoisted once at construction: the directory is
	// immutable, and the hot loops index it per candidate.
	leaves [][]int32
	// ixInto is ix when it supports allocation-free leaf bounds.
	ixInto leafBoundsInto

	codec  encoding.Codec
	table  *bounds.Table
	ghist  *histogram.Histogram
	exactC *cache.Cache[exactLeaf]
	// leafSlab holds the HC-* approximate leaf cache: all cached leaves'
	// packed codes in one arena (directory order within each leaf), so scoring
	// a cached leaf is a single contiguous scan with no per-leaf allocation.
	leafSlab *cache.VarSlab
	buildLUT bool

	scratch sync.Pool
	agg     atomicAggregate
}

// NewTreeEngine builds the cached tree engine. Leaf access frequencies are
// collected by replaying the workload wl through uncached searches (the
// construction procedure of Section 3.6.1), and the HC-O histogram is built
// from the workload's k nearest neighbors.
func NewTreeEngine(ds *dataset.Dataset, ix LeafIndex, store *leafstore.Store, wl [][]float32, k int, cfg TreeConfig) (*TreeEngine, error) {
	if err := cfg.Method.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Method {
	case NoCache, Exact, HCW, HCD, HCV, HCO:
	default:
		return nil, fmt.Errorf("core: tree caching does not support method %s", cfg.Method)
	}
	if cfg.Tau < 1 {
		cfg.Tau = 8
	}
	if cfg.SmoothEps == 0 {
		cfg.SmoothEps = 0.01
	}
	e := &TreeEngine{ds: ds, ix: ix, store: store, cfg: cfg, leaves: ix.Leaves()}
	e.ixInto, _ = ix.(leafBoundsInto)
	e.scratch.New = func() any { return newTreeScratch(e) }

	if cfg.Method == NoCache {
		return e, nil
	}

	// Replay the workload in memory: count leaf accesses (HFF frequency)
	// and collect each query's k nearest points (the QR multiset for HC-O).
	leafFreq := make(map[int]int)
	var qr [][]float32
	for _, q := range wl {
		visited, nn := e.replay(q, k)
		for _, li := range visited {
			leafFreq[li]++
		}
		qr = append(qr, nn...)
	}
	ranked := cache.RankByFrequency(leafFreq)

	cachedPts := 0
	switch cfg.Method {
	case Exact:
		// Capacity in leaves: raw vectors, budget split by average leaf bits.
		itemBits := e.avgLeafBits(32 * ds.Dim)
		capacity := cache.CapacityForBudget(cfg.CacheBytes, itemBits)
		e.exactC = cache.New[exactLeaf](capacity, cache.HFF)
		e.exactC.FillHFF(ranked, func(li int) exactLeaf {
			ids := e.leaves[li]
			pts := make([][]float32, len(ids))
			for i, id := range ids {
				pts[i] = ds.Point(int(id))
			}
			cachedPts += len(ids)
			return exactLeaf{pts: pts}
		})
	default: // HC-* approximate leaf caching
		dom := ds.Domain
		b := histogram.MaxBucketsForCodeLen(cfg.Tau, dom.Ndom)
		switch cfg.Method {
		case HCW:
			e.ghist = histogram.EquiWidth(dom.Ndom, b)
		case HCD:
			e.ghist = histogram.EquiDepth(histogram.DataFrequency(ds, dom), b)
		case HCV:
			e.ghist = histogram.VOptimal(histogram.DataFrequency(ds, dom), b)
		case HCO:
			fp := histogram.WorkloadFrequency(qr, dom)
			histogram.Smooth(fp, histogram.DataFrequency(ds, dom), cfg.SmoothEps)
			e.ghist = histogram.KNNOptimal(fp, b)
		}
		e.codec = encoding.NewCodec(ds.Dim, cfg.Tau)
		e.table = bounds.NewTable(e.ghist, dom, ds.Dim)
		itemBits := e.avgLeafBits(e.codec.ItemBits()) // per-point packed bits
		capacity := cache.CapacityForBudget(cfg.CacheBytes, itemBits)
		codes := make([]int, ds.Dim)
		e.leafSlab = cache.BuildVarSlab(len(e.leaves), capacity, ranked,
			func(li int) int { return len(e.leaves[li]) * e.codec.Words() },
			func(li int, dst []uint64) {
				ids := e.leaves[li]
				for i, id := range ids {
					p := ds.Point(int(id))
					for j, v := range p {
						codes[j] = e.ghist.Bucket(dom.Bin(float64(v)))
					}
					e.codec.Encode(codes, dst[i*e.codec.Words():(i+1)*e.codec.Words()])
				}
				cachedPts += len(ids)
			})
		th := cfg.LUTMinCachedPoints
		if th == 0 {
			th = 2 * e.table.Buckets()
		}
		e.buildLUT = th > 0 && cachedPts >= th
	}
	return e, nil
}

// avgLeafBits estimates the cache cost of one leaf at perPointBits.
func (e *TreeEngine) avgLeafBits(perPointBits int) int {
	if len(e.leaves) == 0 {
		return perPointBits
	}
	total := 0
	for _, l := range e.leaves {
		total += len(l)
	}
	avg := (total*perPointBits + len(e.leaves) - 1) / len(e.leaves)
	if avg < 1 {
		avg = 1
	}
	return avg
}

// replay performs an in-memory exact search, returning the visited leaves
// and the k nearest points (used only during construction).
func (e *TreeEngine) replay(q []float32, k int) (visited []int, nn [][]float32) {
	lbs := e.ix.LeafLowerBounds(q)
	order := argsortByValue(lbs)
	top := vec.NewTopK(k)
	for _, li := range order {
		if top.Full() && lbs[li] >= top.Root() {
			break
		}
		visited = append(visited, li)
		for _, id := range e.leaves[li] {
			top.Push(vec.Dist(q, e.ds.Point(int(id))), int(id))
		}
	}
	ids, _ := top.Results()
	for _, id := range ids {
		nn = append(nn, e.ds.Point(id))
	}
	return visited, nn
}

func argsortByValue(v []float64) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.Sort(&leafSorter{key: v, idx: order})
	return order
}

// leafSorter orders leaf indices by (bound, index) through sort.Interface, so
// the per-query sort reuses a pooled struct instead of allocating the
// closures of sort.Slice.
type leafSorter struct {
	key []float64
	idx []int
}

func (s *leafSorter) Len() int { return len(s.idx) }
func (s *leafSorter) Less(a, b int) bool {
	ka, kb := s.key[s.idx[a]], s.key[s.idx[b]]
	if ka != kb {
		return ka < kb
	}
	return s.idx[a] < s.idx[b]
}
func (s *leafSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// Aggregate returns accumulated statistics.
func (e *TreeEngine) Aggregate() Aggregate { return e.agg.Load() }

// ResetStats clears accumulated statistics.
func (e *TreeEngine) ResetStats() { e.agg.Reset() }

// treeScratch is the pooled per-query working set of the tree search. Like
// the flat engine's searchScratch it embeds the shared reduceScratch, so the
// all-cached steady state performs zero heap allocations.
type treeScratch struct {
	eng *TreeEngine
	st  QueryStats
	ctx context.Context // request context of the query in flight
	q   []float32

	reduceScratch

	nodeLB     []float64 // squared per-leaf lower bounds
	sorter     leafSorter
	ubTop      *vec.TopK
	lut        *bounds.QueryLUT
	ptLB, ptUB []float64 // per-point squared bounds of one cached leaf

	seeds, pend []multistep.GroupCandidate
	skip        map[int32]bool
	msc         multistep.Scratch
	rbuf        []multistep.Result
	sqd         []float64 // squared distances of one loaded leaf

	// fetch is the Phase 3 group fetch, bound once per scratch so per-query
	// calls do not allocate a closure.
	fetch multistep.GroupFetch
}

func newTreeScratch(e *TreeEngine) *treeScratch {
	sc := &treeScratch{
		eng:           e,
		reduceScratch: newReduceScratch(),
		skip:          make(map[int32]bool),
	}
	sc.fetch = sc.loadGroup
	return sc
}

func (e *TreeEngine) getScratch() *treeScratch {
	return e.scratch.Get().(*treeScratch)
}

func (e *TreeEngine) putScratch(sc *treeScratch) {
	sc.q = nil
	sc.ctx = nil // do not retain request-scoped values past the query
	e.scratch.Put(sc)
}

// loadLeaf loads one leaf from the store, charging its points and pages to
// the query. Pages are charged per loaded leaf (not by differencing the
// store's device counter), so concurrent searches account their own I/O.
func (e *TreeEngine) loadLeaf(li int, st *QueryStats) ([]int32, [][]float32, error) {
	ids, pts, err := e.store.Load(li)
	if err != nil {
		return nil, nil, err
	}
	st.Fetched += len(ids)
	st.PageReads += int64(e.store.LeafPages(li))
	return ids, pts, nil
}

// loadGroup is the refinement fetch: loading one leaf yields the exact
// squared distance of every resident point.
func (sc *treeScratch) loadGroup(group int32) ([]int32, []float64, error) {
	// Every group load is leaf-sized disk I/O: an abandoned request stops
	// paying for it here, mid-refinement.
	if err := sc.ctx.Err(); err != nil {
		return nil, nil, err
	}
	ids, pts, err := sc.eng.loadLeaf(int(group), &sc.st)
	if err != nil {
		return nil, nil, err
	}
	sc.sqd = grow(sc.sqd, len(pts))
	for i, p := range pts {
		sc.sqd[i] = vec.SqDist(sc.q, p)
	}
	return ids, sc.sqd, nil
}

// Search runs the cached tree kNN search of Section 3.6.1 and returns the
// identifiers of the exact k nearest points. Like Algorithm 1, approximate
// candidates whose upper bound beats the k-th lower bound are declared
// results without ever fetching their leaf — the identifiers are the answer,
// per Definition 3's remark.
func (e *TreeEngine) Search(q []float32, k int) ([]int, QueryStats, error) {
	return e.SearchIntoCtx(context.Background(), q, k, nil)
}

// SearchCtx is Search under a request context: a canceled or expired ctx
// abandons the query at the next check point — before each uncached leaf
// load in Phase 2, before refinement starts, and before every group load —
// returning ctx.Err() (possibly wrapped).
func (e *TreeEngine) SearchCtx(ctx context.Context, q []float32, k int) ([]int, QueryStats, error) {
	return e.SearchIntoCtx(ctx, q, k, nil)
}

// SearchInto is Search appending the result identifiers to dst (pass
// dst[:0] to reuse a buffer across queries; with every visited leaf cached
// the steady state then allocates nothing).
func (e *TreeEngine) SearchInto(q []float32, k int, dst []int) ([]int, QueryStats, error) {
	return e.SearchIntoCtx(context.Background(), q, k, dst)
}

// phase12 runs Phase 1 (leaf visit order) and Phase 2 (cached-leaf scoring,
// uncached-leaf loads, lb_k/ub_k partition) for one query on scratch sc.
// True-hit identifiers are appended to dst; the surviving candidates are
// split into sc.seeds (exact distance in hand) and sc.pend (leaf-resident,
// to be refined). Both the single-query search and the batch pipeline start
// here.
func (e *TreeEngine) phase12(ctx context.Context, sc *treeScratch, q []float32, k int, dst []int) ([]int, error) {
	st := &sc.st

	// Phase 1: candidate generation order — per-leaf lower bounds, squared
	// in place (x ↦ x² is monotone, so the visit order, the node cutoff and
	// the bound clamp are unchanged while the per-point work below never
	// takes a square root).
	t0 := time.Now()
	var lbs []float64
	if e.ixInto != nil {
		sc.nodeLB = e.ixInto.LeafLowerBoundsInto(q, sc.nodeLB)
		lbs = sc.nodeLB
	} else {
		lbs = e.ix.LeafLowerBounds(q)
		sc.nodeLB = grow(sc.nodeLB, len(lbs))
	}
	for i := range lbs {
		sc.nodeLB[i] = lbs[i] * lbs[i]
	}
	sc.sorter.key = sc.nodeLB
	sc.sorter.idx = grow(sc.sorter.idx, len(sc.nodeLB))
	for i := range sc.sorter.idx {
		sc.sorter.idx[i] = i
	}
	sort.Sort(&sc.sorter)
	st.GenTime = time.Since(t0)

	// Phase 2: visit leaves in bound order, scoring cached ones in RAM and
	// loading the rest; then reduce with the shared lb_k/ub_k partition.
	t1 := time.Now()
	if sc.ubTop == nil {
		sc.ubTop = vec.NewTopK(k)
	} else {
		sc.ubTop.Reset(k)
	}
	ubTop := sc.ubTop
	var lut *bounds.QueryLUT
	if e.buildLUT {
		sc.lut = e.table.BuildLUT(q, sc.lut)
		lut = sc.lut
		st.UsedLUT = true
	}
	cs := sc.cs[:0]
	for _, li := range sc.sorter.idx {
		if ubTop.Full() && sc.nodeLB[li] >= ubTop.Root() {
			// No remaining leaf can contain one of the k nearest: stop
			// generating candidates.
			break
		}
		ids := e.leaves[li]
		st.Candidates += len(ids)
		examined := false
		if e.exactC != nil {
			if leafPts, ok := e.exactC.Get(li); ok {
				st.Hits += len(leafPts.pts)
				for i, id := range ids {
					d2 := vec.SqDist(q, leafPts.pts[i])
					cs = append(cs, candState{id: id, leaf: -1, lbSq: d2, ubSq: d2, known: true})
					ubTop.Push(d2, int(id))
				}
				examined = true
			}
		} else if e.leafSlab != nil {
			if words, ok := e.leafSlab.Lookup(li); ok {
				n := len(ids)
				st.Hits += n
				sc.ptLB = grow(sc.ptLB, n)
				sc.ptUB = grow(sc.ptUB, n)
				if lut != nil {
					lut.BoundsSqPackedRange(words, n, e.codec, sc.ptLB, sc.ptUB)
				} else {
					w := e.codec.Words()
					for i := 0; i < n; i++ {
						sc.ptLB[i], sc.ptUB[i] = e.table.BoundsSqPacked(q, words[i*w:(i+1)*w], e.codec)
					}
				}
				nodeLBSq := sc.nodeLB[li]
				for i, id := range ids {
					lbSq, ubSq := sc.ptLB[i], sc.ptUB[i]
					if lbSq < nodeLBSq {
						lbSq = nodeLBSq // node bound can be tighter
					}
					ubTop.Push(ubSq, int(id))
					cs = append(cs, candState{id: id, leaf: int32(li), lbSq: lbSq, ubSq: ubSq})
				}
				examined = true
			}
		}
		if !examined {
			// Uncached leaves cost disk I/O in Phase 2 (unlike the flat
			// engine, whose Phase 2 is pure CPU): check the context before
			// each load so an abandoned request stops paying immediately.
			if err := ctx.Err(); err != nil {
				sc.cs = cs
				return dst, err
			}
			lids, pts, err := e.loadLeaf(li, st)
			if err != nil {
				sc.cs = cs
				return dst, err
			}
			for i, id := range lids {
				d2 := vec.SqDist(q, pts[i])
				cs = append(cs, candState{id: id, leaf: -1, lbSq: d2, ubSq: d2, known: true})
				ubTop.Push(d2, int(id))
			}
		}
	}
	sc.cs = cs

	// Candidate reduction (Algorithm 1 lines 7–13) over known ∪ pending.
	lbkSq, ubkSq := sc.kthBoundsSq(cs, k)
	results, remaining := partitionCandidates(cs, lbkSq, ubkSq, false, st, dst)
	sc.seeds, sc.pend = sc.seeds[:0], sc.pend[:0]
	for _, c := range remaining {
		if c.known {
			sc.seeds = append(sc.seeds, multistep.GroupCandidate{ID: c.id, Group: -1, LBSq: c.lbSq})
		} else {
			sc.pend = append(sc.pend, multistep.GroupCandidate{ID: c.id, Group: c.leaf, LBSq: c.lbSq})
		}
	}
	st.Remaining = len(sc.pend)
	st.ReduceTime = time.Since(t1)
	return results, nil
}

// SearchIntoCtx is SearchInto under a request context; see SearchCtx for
// the cancellation semantics.
func (e *TreeEngine) SearchIntoCtx(ctx context.Context, q []float32, k int, dst []int) ([]int, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.ctx = ctx
	sc.st = QueryStats{}
	sc.q = q
	st := &sc.st

	base := len(dst)
	results, err := e.phase12(ctx, sc, q, k, dst)
	if err != nil {
		return results, *st, err
	}

	// Refinement: known candidates compete for the open slots at no cost;
	// pending ones are resolved in ascending lower-bound order, loading a
	// leaf at most once and consuming all its exact distances (the
	// node-level tightening of Section 3.6.1). An abandoned request is
	// dropped here, before the first refinement load.
	if err := ctx.Err(); err != nil {
		return dst, *st, err
	}
	t2 := time.Now()
	kNeed := k - st.TrueHits
	if kNeed > 0 {
		clear(sc.skip)
		for _, id := range results[base:] {
			sc.skip[int32(id)] = true
		}
		rbuf, _, err := sc.msc.SearchGroupsSq(sc.seeds, sc.pend, kNeed, sc.skip, sc.fetch, sc.rbuf[:0])
		sc.rbuf = rbuf
		if err != nil {
			return dst, *st, err
		}
		for _, r := range rbuf {
			results = append(results, r.ID)
		}
	}
	st.RefineTime = time.Since(t2)
	st.SimulatedIO = time.Duration(st.PageReads) * e.store.Tio()

	e.agg.Add(*st)
	return results, *st, nil
}
