package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"exploitbit/internal/disk"
)

// faultSearcher drives the handler's fault-tolerance paths: a transient or
// permanent typed disk error for poisoned first coordinates, a degraded
// answer for another, clean results otherwise.
type faultSearcher struct{}

func (s *faultSearcher) Search(ctx context.Context, q []float32, k int) ([]int, Stats, error) {
	switch {
	case len(q) > 0 && q[0] == -1:
		return nil, Stats{}, fmt.Errorf("fetching point: %w",
			&disk.PageError{Page: 7, Op: "read", Transient: true, Err: disk.ErrInjected})
	case len(q) > 0 && q[0] == -2:
		return nil, Stats{}, fmt.Errorf("fetching point: %w",
			&disk.PageError{Page: 7, Op: "read", Transient: false, Err: disk.ErrInjected})
	case len(q) > 0 && q[0] == -3:
		ids := make([]int, k)
		for i := range ids {
			ids[i] = i
		}
		return ids, Stats{Candidates: k, Degraded: true, FailedShards: []int{1}}, nil
	}
	ids := make([]int, k)
	for i := range ids {
		ids[i] = i
	}
	return ids, Stats{Candidates: k}, nil
}

func (s *faultSearcher) SearchBatch(ctx context.Context, qs [][]float32, k int) ([][]int, []Stats, error) {
	ids := make([][]int, len(qs))
	sts := make([]Stats, len(qs))
	for j, q := range qs {
		var err error
		ids[j], sts[j], err = s.Search(ctx, q, k)
		if err != nil {
			return nil, nil, err
		}
	}
	return ids, sts, nil
}

func newFaultServer(t *testing.T) (*httptest.Server, *Handler) {
	t.Helper()
	h := New(&faultSearcher{}, Config{Dim: 3, MaxK: 50})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h
}

func TestTransientIOErrorIs503WithRetryAfter(t *testing.T) {
	srv, h := newFaultServer(t)
	resp, out := post(t, srv, `{"vector":[-1,0,0],"k":3}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %v", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 on a transient fault must carry Retry-After")
	}
	if h.transient.Load() != 1 {
		t.Fatalf("transient counter = %d, want 1", h.transient.Load())
	}

	m := getJSON(t, srv, "/metrics")
	if m["transient_failures"].(float64) != 1 {
		t.Fatalf("metrics transient_failures = %v", m["transient_failures"])
	}
}

func TestPermanentIOErrorIs500(t *testing.T) {
	srv, _ := newFaultServer(t)
	resp, out := post(t, srv, `{"vector":[-2,0,0],"k":3}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("permanent failures must not advertise Retry-After")
	}
}

func TestDegradedResponseFlagged(t *testing.T) {
	srv, _ := newFaultServer(t)

	// A clean search carries no degraded marker at all.
	resp, out := post(t, srv, `{"vector":[1,0,0],"k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["degraded"]; ok {
		t.Fatalf("clean response carries degraded flag: %v", out)
	}

	resp, out = post(t, srv, `{"vector":[-3,0,0],"k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search must still be 200: %d %v", resp.StatusCode, out)
	}
	if out["degraded"] != true {
		t.Fatalf("degraded flag missing: %v", out)
	}
	st := out["stats"].(map[string]any)
	if st["degraded"] != true {
		t.Fatalf("stats.degraded missing: %v", st)
	}
	fs := st["failed_shards"].([]any)
	if len(fs) != 1 || fs[0].(float64) != 1 {
		t.Fatalf("stats.failed_shards = %v, want [1]", fs)
	}

	m := getJSON(t, srv, "/metrics")
	if m["degraded_searches"].(float64) != 1 {
		t.Fatalf("metrics degraded_searches = %v", m["degraded_searches"])
	}
}

func TestBatchDegradedAndTransient(t *testing.T) {
	srv, _ := newFaultServer(t)

	// One degraded member flags only that member, and counts once.
	resp, out := postBatch(t, srv, `{"vectors":[[1,0,0],[-3,0,0]],"k":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if _, ok := results[0].(map[string]any)["degraded"]; ok {
		t.Fatal("clean batch member flagged degraded")
	}
	if results[1].(map[string]any)["degraded"] != true {
		t.Fatal("degraded batch member not flagged")
	}
	m := getJSON(t, srv, "/metrics")
	if m["degraded_searches"].(float64) != 1 {
		t.Fatalf("metrics degraded_searches = %v", m["degraded_searches"])
	}

	// A transient fault fails the whole batch with 503 + Retry-After.
	resp, out = postBatch(t, srv, `{"vectors":[[1,0,0],[-1,0,0]],"k":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("batch 503 on a transient fault must carry Retry-After")
	}
}

func TestMetricsIOBlock(t *testing.T) {
	srv, h := newFaultServer(t)

	// No source registered: no io object.
	m := getJSON(t, srv, "/metrics")
	if _, ok := m["io"]; ok {
		t.Fatalf("io block present without a source: %v", m["io"])
	}

	h.SetIOStats(func() IOStats {
		return IOStats{Retries: 5, TransientErrors: 6, PermanentErrors: 1}
	})
	m = getJSON(t, srv, "/metrics")
	io := m["io"].(map[string]any)
	if io["io_retries"].(float64) != 5 ||
		io["io_errors_transient"].(float64) != 6 ||
		io["io_errors_permanent"].(float64) != 1 {
		t.Fatalf("io block = %v", io)
	}
}

func TestStatsShardQuarantineVisible(t *testing.T) {
	h, _ := newTestHandler()
	h.SetShardStats(func() []ShardStat {
		return []ShardStat{
			{Shard: 0, Points: 10},
			{Shard: 1, Points: 10, Quarantined: true, FetchFailures: 3},
		}
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	out := getJSON(t, srv, "/stats")
	shards := out["shards"].([]any)
	s0 := shards[0].(map[string]any)
	if _, ok := s0["quarantined"]; ok {
		t.Fatalf("healthy shard carries quarantined flag: %v", s0)
	}
	s1 := shards[1].(map[string]any)
	if s1["quarantined"] != true || s1["fetch_failures"].(float64) != 3 {
		t.Fatalf("quarantined shard block = %v", s1)
	}
}
