// The delta index: the in-memory overlay holding points inserted since the
// last compaction (exact vectors plus, when the method keeps per-point codes,
// HFF codes quantized through the live engine's histogram) and the cumulative
// tombstone set over base identifiers.
//
// Points are append-only in identifier order — the stored prefix is immutable
// — so a snapshot for a merged search is an O(1) reslice under a read lock.
// Tombstones are copy-on-write: Deleted reads an atomic map pointer with no
// lock at all, which keeps the hot search path free of writer contention.
// Tombstones are cumulative for the life of the directory: compaction folds
// deleted points into the base file anyway (identifiers must stay dense and
// equal to point-file slots), so the mask that hides them never retires.

package ingest

import (
	"sync"
	"sync/atomic"

	"exploitbit/internal/core"
)

// Delta is the in-memory delta index. One writer at a time (the Live write
// lock); any number of concurrent readers.
type Delta struct {
	mu    sync.RWMutex
	pts   []core.MergePoint
	codes [][]uint64 // parallel to pts; nil entries for code-free methods

	tombs  atomic.Pointer[map[int64]struct{}]
	nTombs atomic.Int64
}

// NewDelta returns an empty delta index seeded with the given tombstone set
// (from recovery; may be nil).
func NewDelta(tombs map[int64]struct{}) *Delta {
	if tombs == nil {
		tombs = map[int64]struct{}{}
	}
	d := &Delta{}
	d.tombs.Store(&tombs)
	d.nTombs.Store(int64(len(tombs)))
	return d
}

// Add appends a point. Identifiers must arrive in increasing order (the Live
// write lock guarantees it).
func (d *Delta) Add(id int32, vec []float32, code []uint64) {
	d.mu.Lock()
	d.pts = append(d.pts, core.MergePoint{ID: id, Vec: vec})
	d.codes = append(d.codes, code)
	d.mu.Unlock()
}

// Delete tombstones id. Returns false when it already was.
func (d *Delta) Delete(id int64) bool {
	old := *d.tombs.Load()
	if _, dead := old[id]; dead {
		return false
	}
	next := make(map[int64]struct{}, len(old)+1)
	for k := range old {
		next[k] = struct{}{}
	}
	next[id] = struct{}{}
	d.tombs.Store(&next)
	d.nTombs.Store(int64(len(next)))
	return true
}

// Deleted reports whether id is tombstoned. Lock-free; safe from any
// goroutine, including mid-search through core.Merge.
func (d *Delta) Deleted(id int32) bool {
	_, dead := (*d.tombs.Load())[int64(id)]
	return dead
}

// Snapshot returns the current points as an immutable prefix view. The
// returned slice must not be appended to or mutated.
func (d *Delta) Snapshot() []core.MergePoint {
	d.mu.RLock()
	pts := d.pts[:len(d.pts):len(d.pts)]
	d.mu.RUnlock()
	return pts
}

// TombSet returns the current tombstone map. The map is immutable (writers
// replace, never mutate), so the caller may read it indefinitely.
func (d *Delta) TombSet() map[int64]struct{} {
	return *d.tombs.Load()
}

// Prune drops every point with identifier below horizon — the points a
// freshly installed compacted engine now owns. Points at or past the horizon
// (inserted while the compaction ran) stay.
func (d *Delta) Prune(horizon int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := 0
	for i < len(d.pts) && d.pts[i].ID < horizon {
		i++
	}
	if i == 0 {
		return
	}
	// Copy the survivors out so the folded prefix's memory can be reclaimed.
	d.pts = append([]core.MergePoint(nil), d.pts[i:]...)
	d.codes = append([][]uint64(nil), d.codes[i:]...)
}

// Len reports the number of delta points.
func (d *Delta) Len() int {
	d.mu.RLock()
	n := len(d.pts)
	d.mu.RUnlock()
	return n
}

// Tombstones reports the cumulative tombstone count.
func (d *Delta) Tombstones() int { return int(d.nTombs.Load()) }

// Code returns the stored HFF code of the i-th delta point (nil for methods
// that keep no codes). Diagnostic accessor; merged searches score delta
// points exactly and never consult codes.
func (d *Delta) Code(i int) []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.codes[i]
}
