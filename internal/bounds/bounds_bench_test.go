package bounds

import (
	"math/rand"
	"testing"

	"exploitbit/internal/encoding"
	"exploitbit/internal/histogram"
	"exploitbit/internal/vec"
)

func benchSetup(dim, tau int) (*Table, []float32, []uint64, encoding.Codec) {
	rng := rand.New(rand.NewSource(1))
	dom := vec.NewDomain(0, 1, 1024)
	h := histogram.EquiWidth(1024, 1<<tau)
	tab := NewTable(h, dom, dim)
	codec := encoding.NewCodec(dim, tau)
	q := make([]float32, dim)
	codes := make([]int, dim)
	for j := range q {
		q[j] = rng.Float32()
		codes[j] = rng.Intn(1 << tau)
	}
	return tab, q, codec.Encode(codes, nil), codec
}

// BenchmarkBoundsPacked is the per-candidate cost of Phase 2's reference
// path at the paper's common configuration (d=128, τ=8): one lower/upper
// bound pair from a packed code array.
func BenchmarkBoundsPacked(b *testing.B) {
	tab, q, words, codec := benchSetup(128, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.BoundsPacked(q, words, codec)
	}
}

// BenchmarkBoundsLUT is the per-candidate cost of the ADC-style fast path at
// the same configuration: the query LUT is built once (amortized over the
// whole candidate set), then each candidate is two table-lookup
// accumulations per dimension with no sqrt.
func BenchmarkBoundsLUT(b *testing.B) {
	tab, q, words, codec := benchSetup(128, 8)
	lut := tab.BuildLUT(q, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lut.BoundsSqPacked(words, codec)
	}
}

// BenchmarkBoundsLUTGeneric measures the non-byte-aligned LUT path (τ=10),
// isolating what the τ=8/16 unpack specializations buy.
func BenchmarkBoundsLUTGeneric(b *testing.B) {
	tab, q, words, codec := benchSetup(128, 10)
	lut := tab.BuildLUT(q, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lut.BoundsSqPacked(words, codec)
	}
}

// BenchmarkBuildLUT is the once-per-query cost the fast path amortizes.
func BenchmarkBuildLUT(b *testing.B) {
	tab, q, _, _ := benchSetup(128, 8)
	lut := tab.BuildLUT(q, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.BuildLUT(q, lut)
	}
}

// BenchmarkBoundsPacked150d is the reference path on a τ that is not
// byte-aligned (codes cross word boundaries).
func BenchmarkBoundsPacked150d(b *testing.B) {
	tab, q, words, codec := benchSetup(150, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.BoundsPacked(q, words, codec)
	}
}

func BenchmarkBoundsPacked960d(b *testing.B) {
	tab, q, words, codec := benchSetup(960, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.BoundsPacked(q, words, codec)
	}
}

func BenchmarkRect960d(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dim := 960
	q := make([]float32, dim)
	lo := make([]float32, dim)
	hi := make([]float32, dim)
	for j := 0; j < dim; j++ {
		q[j] = rng.Float32()
		a, c := rng.Float32(), rng.Float32()
		if a > c {
			a, c = c, a
		}
		lo[j], hi[j] = a, c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rect(q, lo, hi)
	}
}
