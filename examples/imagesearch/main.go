// Image-retrieval scenario (the paper's motivating workload): a GIST-like
// 960-d collection served by disk-based C2LSH, a Flickr-style power-law
// query log, and a RAM budget to spend on caching. The example sweeps the
// budget across methods and prints the I/O and response-time curves of
// Figure 13, then inspects how the cache handled one hot and one cold query.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"

	"exploitbit"
)

func main() {
	// A scaled-down SOGOU: 4000 web images as 960-d GIST-like descriptors.
	ds := exploitbit.SogouLike(4000, 11)
	fileMB := int64(ds.Len()) * int64(ds.PointSize()) >> 20
	fmt.Printf("collection: %d images x %d-d GIST (%d MB on disk)\n", ds.Len(), ds.Dim, fileMB)

	// The search engine's query log: a few queries are viral.
	qlog := exploitbit.GenLog(ds, exploitbit.LogConfig{
		PoolSize: 400, Length: 2540, ZipfS: 1.35, Perturb: 0.004, Seed: 12,
	})
	wl, qtest := qlog.Split(40)
	freqs := qlog.RankFreq()
	fmt.Printf("query log: %d arrivals, %d distinct; hottest query repeats %d times\n\n",
		len(qlog.Seq), len(freqs), freqs[0])

	sys, err := exploitbit.Open(ds, wl, exploitbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fileBytes := int64(ds.Len()) * int64(ds.PointSize())
	methods := []exploitbit.Method{exploitbit.Exact, exploitbit.CVA, exploitbit.HCD, exploitbit.HCO}

	fmt.Println("avg response time (s/query) by cache budget:")
	fmt.Printf("%-8s", "budget")
	for _, m := range methods {
		fmt.Printf("  %8s", m)
	}
	fmt.Println()
	for _, frac := range []float64{0.05, 0.15, 0.30} {
		budget := int64(float64(fileBytes) * frac)
		fmt.Printf("%6.0f%% ", frac*100)
		for _, m := range methods {
			eng, err := sys.Engine(m, budget, sys.OptimalTau(budget))
			if err != nil {
				log.Fatal(err)
			}
			for _, q := range qtest {
				if _, _, err := eng.Search(q, 10); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("  %8.4f", eng.Aggregate().AvgResponse().Seconds())
		}
		fmt.Println()
	}

	// Zoom in: a hot query (from the head of the log) vs a cold one.
	budget := fileBytes / 4
	eng, err := sys.Engine(exploitbit.HCO, budget, sys.OptimalTau(budget))
	if err != nil {
		log.Fatal(err)
	}
	hot := wl[len(wl)-1] // recent arrivals are overwhelmingly head queries
	cold := ds.Point(3)  // an arbitrary image nobody searched for
	for label, q := range map[string][]float32{"hot query": hot, "cold query": cold} {
		_, st, err := eng.Search(q, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d candidates, %d cache hits, %d pruned + %d true hits before I/O, fetched %d",
			label, st.Candidates, st.Hits, st.Pruned, st.TrueHits, st.Fetched)
	}
	fmt.Println()
}
