package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := Dist(a, b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := SqDist(a, b); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
	if got := Dist(a, a); got != 0 {
		t.Fatalf("Dist(a,a) = %v, want 0", got)
	}
}

func TestDistPaperExample(t *testing.T) {
	// The running example of Section 3.2: q=(9,11), p2 interval
	// ([8..15],[16..23]) gives dist+ = sqrt(6^2+12^2) = 13.42.
	q := []float32{9, 11}
	far := []float32{15, 23}
	if got, want := Dist(q, far), math.Sqrt(36+144); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Dist = %v, want %v", got, want)
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dist([]float32{1}, []float32{1, 2})
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float32) bool {
		a := []float32{ax, ay}
		b := []float32{bx, by}
		c := []float32{cx, cy}
		dab, dba := Dist(a, b), Dist(b, a)
		if dab != dba {
			return false
		}
		// Triangle inequality with a little float slack.
		return Dist(a, c) <= dab+Dist(b, c)+1e-9*(1+dab)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float32{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty MinMax = %v,%v; want 0,1", lo, hi)
	}
}

func TestDomainBinEdges(t *testing.T) {
	d := NewDomain(0, 32, 32) // unit-width bins 0..31, like Figure 5
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {0.5, 0}, {2, 2}, {20, 20}, {31.9, 31}, {32, 31}, {-5, 0}, {99, 31}}
	for _, c := range cases {
		if got := d.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if d.BinLo(4) != 4 || d.BinHi(4) != 5 {
		t.Fatalf("bin 4 edges = [%v,%v], want [4,5]", d.BinLo(4), d.BinHi(4))
	}
	if d.Width() != 1 {
		t.Fatalf("Width = %v, want 1", d.Width())
	}
}

func TestDomainBinContainsValue(t *testing.T) {
	d := NewDomain(-2, 5, 97)
	f := func(raw float64) bool {
		// Map raw into the domain interval.
		v := -2 + math.Mod(math.Abs(raw), 7)
		b := d.Bin(v)
		return d.BinLo(b) <= v+1e-12 && v <= d.BinHi(b)+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDomainPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ndom":     func() { NewDomain(0, 1, 0) },
		"interval": func() { NewDomain(3, 3, 8) },
		"zeroval":  func() { var d Domain; d.Bin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBinPoint(t *testing.T) {
	d := NewDomain(0, 1, 4)
	p := []float32{0.1, 0.4, 0.9}
	got := d.BinPoint(p, nil)
	want := []int{0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BinPoint = %v, want %v", got, want)
		}
	}
	// Reuse destination.
	dst := make([]int, 3)
	if &d.BinPoint(p, dst)[0] != &dst[0] {
		t.Fatal("BinPoint did not reuse dst")
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	if !math.IsInf(tk.Root(), 1) {
		t.Fatal("empty TopK root should be +Inf")
	}
	for i, d := range []float64{5, 1, 4, 2, 8, 3} {
		tk.Push(d, i)
	}
	ids, dists := tk.Results()
	wantD := []float64{1, 2, 3}
	wantI := []int{1, 3, 5}
	for i := range wantD {
		if dists[i] != wantD[i] || ids[i] != wantI[i] {
			t.Fatalf("Results = %v %v, want %v %v", ids, dists, wantI, wantD)
		}
	}
	if tk.Root() != 3 {
		t.Fatalf("Root = %v, want 3", tk.Root())
	}
}

func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(100)
		tk := NewTopK(k)
		all := make([]float64, n)
		for i := range all {
			all[i] = rng.Float64()
			tk.Push(all[i], i)
		}
		// Reference: sort and take first k.
		ref := append([]float64(nil), all...)
		for i := 1; i < len(ref); i++ {
			for j := i; j > 0 && ref[j-1] > ref[j]; j-- {
				ref[j-1], ref[j] = ref[j], ref[j-1]
			}
		}
		_, dists := tk.Results()
		m := k
		if n < k {
			m = n
		}
		if len(dists) != m {
			t.Fatalf("len = %d, want %d", len(dists), m)
		}
		for i := 0; i < m; i++ {
			if dists[i] != ref[i] {
				t.Fatalf("trial %d: dists[%d]=%v, want %v", trial, i, dists[i], ref[i])
			}
		}
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewTopK(0)
}
