package exploitbit

import (
	"context"
	"net/http"
	"time"

	"exploitbit/internal/costmodel"
	"exploitbit/internal/disk"
	"exploitbit/internal/server"
)

// ServeOptions tunes the HTTP handler's request lifecycle. Zero values
// select the documented defaults.
type ServeOptions struct {
	// MaxK caps the k accepted by /search (default 1000).
	MaxK int
	// MaxInFlight is the admission limit: concurrent searches beyond it are
	// shed with 503 and counted on /metrics (default 256). A batch holds one
	// slot per vector.
	MaxInFlight int
	// MaxBatch caps the vectors accepted by one /search/batch request
	// (default 64).
	MaxBatch int
}

func (o ServeOptions) config(dim int) server.Config {
	return server.Config{Dim: dim, MaxK: o.MaxK, MaxInFlight: o.MaxInFlight, MaxBatch: o.MaxBatch}
}

// engineSearcher adapts an Engine (or Maintainer) to the HTTP handler. The
// batch function enables POST /search/batch: both engines coalesce the
// batch's refinement I/O so overlapping queries share page reads.
type engineSearcher struct {
	search func(ctx context.Context, q []float32, k int) ([]int, QueryStats, error)
	batch  func(ctx context.Context, qs [][]float32, k int) ([][]int, []QueryStats, error)
}

func wireStats(st QueryStats) server.Stats {
	return server.Stats{
		Candidates:  st.Candidates,
		Hits:        st.Hits,
		Pruned:      st.Pruned,
		TrueHits:    st.TrueHits,
		Remaining:   st.Remaining,
		Fetched:     st.Fetched,
		PageReads:   st.PageReads,
		SimulatedIO: st.SimulatedIO,
		GenTime:     st.GenTime,
		ReduceTime:  st.ReduceTime,
		RefineTime:  st.RefineTime,

		Degraded:     st.Degraded,
		FailedShards: st.FailedShards,
	}
}

// wireIOStats adapts a disk-level stats snapshot source to the handler's
// /metrics io block.
func wireIOStats(fn func() disk.Stats) func() server.IOStats {
	return func() server.IOStats {
		ds := fn()
		return server.IOStats{
			Retries:         ds.Retries,
			TransientErrors: ds.TransientErrors,
			PermanentErrors: ds.PermanentErrors,
		}
	}
}

func (s engineSearcher) Search(ctx context.Context, q []float32, k int) ([]int, server.Stats, error) {
	ids, st, err := s.search(ctx, q, k)
	return ids, wireStats(st), err
}

func (s engineSearcher) SearchBatch(ctx context.Context, qs [][]float32, k int) ([][]int, []server.Stats, error) {
	ids, sts, err := s.batch(ctx, qs, k)
	if err != nil {
		return nil, nil, err
	}
	out := make([]server.Stats, len(sts))
	for i, st := range sts {
		out[i] = wireStats(st)
	}
	return ids, out, nil
}

// Serve returns an http.Handler exposing the engine with default lifecycle
// options: POST /search, POST /search/batch, GET /stats, GET /metrics,
// GET /healthz. Safe for concurrent requests; the request context is plumbed
// into the search, so a disconnected client abandons its query before
// refinement I/O.
func Serve(eng *Engine, dim int) http.Handler {
	return ServeWith(eng, dim, ServeOptions{})
}

// ServeWith is Serve with explicit lifecycle options.
func ServeWith(eng *Engine, dim int, opt ServeOptions) http.Handler {
	h := server.New(engineSearcher{search: eng.SearchCtx, batch: eng.SearchBatchCtx}, opt.config(dim))
	h.SetIOStats(wireIOStats(eng.DiskStats))
	return h
}

// ServeMaintained is Serve over a self-maintaining engine: the cache
// rebuilds itself in the background under workload drift while requests
// flow, and /stats carries a "maintain" object with rebuild counters.
func ServeMaintained(m *Maintainer, dim int) http.Handler {
	return ServeMaintainedWith(m, dim, ServeOptions{})
}

// ServeMaintainedWith is ServeMaintained with explicit lifecycle options.
func ServeMaintainedWith(m *Maintainer, dim int, opt ServeOptions) http.Handler {
	h := server.New(engineSearcher{search: m.SearchCtx, batch: m.SearchBatchCtx}, opt.config(dim))
	h.SetRebuildStats(func() server.RebuildStats { return wireRebuildStats(m.Stats()) })
	h.SetIOStats(wireIOStats(m.DiskStats))
	if _, ok := m.CostModel(); ok {
		h.SetCostModelStats(func() server.CostModelStats {
			snap, _ := m.CostModel()
			return wireCostModel(snap)
		})
	}
	return h
}

func wireRebuildStats(st MaintainStats) server.RebuildStats {
	rs := server.RebuildStats{
		Rebuilds:        st.Rebuilds,
		RebuildErrors:   st.RebuildErrors,
		RebuildInFlight: st.RebuildInFlight,
		LastRebuildWall: st.LastRebuildWall,
		Retunes:         st.Retunes,
		Tau:             st.Tau,
	}
	if !st.LastRebuildAt.IsZero() {
		rs.LastRebuildAt = st.LastRebuildAt.Format(time.RFC3339Nano)
	}
	return rs
}

// wireCostModel adapts a drift-watchdog snapshot to the /metrics block.
func wireCostModel(s costmodel.MonitorSnapshot) server.CostModelStats {
	return server.CostModelStats{
		Tau:                s.Tau,
		RecommendedTau:     s.RecommendedTau,
		ObservedRhoHit:     s.ObservedRhoHit,
		ObservedRhoRefine:  s.ObservedRhoRefine,
		PredictedRhoHit:    s.PredictedRhoHit,
		PredictedRhoRefine: s.PredictedRhoRefine,
		PredictedCrefine:   s.PredictedCrefine,
		BestCrefine:        s.BestCrefine,
		Improvement:        s.Improvement,
		PendingWindows:     s.PendingWindows,
		Windows:            s.Windows,
		Retunes:            s.Retunes,
	}
}

// wireShardStats snapshots a sharded engine's per-shard blocks; maintain and
// costModels are optional sources of per-shard rebuild activity and
// drift-watchdog telemetry (both positional with shards).
func wireShardStats(se *Sharded, maintain func() []MaintainStats, costModels func() []*costmodel.MonitorSnapshot) func() []server.ShardStat {
	return func() []server.ShardStat {
		aggs := se.ShardAggregates()
		var ms []MaintainStats
		if maintain != nil {
			ms = maintain()
		}
		var cms []*costmodel.MonitorSnapshot
		if costModels != nil {
			cms = costModels()
		}
		out := make([]server.ShardStat, len(aggs))
		for i, a := range aggs {
			st := server.ShardStat{
				Shard:         a.Shard,
				Points:        a.Points,
				CachedItems:   a.CachedItems,
				CacheCapacity: a.CacheCapacity,
				Queries:       int64(a.Agg.Queries),
				Candidates:    a.Agg.Candidates,
				Hits:          a.Agg.Hits,
				Remaining:     a.Agg.Remaining,
				Fetched:       a.Agg.Fetched,
				PageReads:     a.Agg.PageReads,
				RhoHitEwma:    a.Agg.EwmaRhoHit,
				RhoRefineEwma: a.Agg.EwmaRhoRefine,
				Quarantined:   a.Quarantined,
				FetchFailures: a.FetchFailures,
			}
			if a.Agg.Candidates > 0 {
				st.HitRatio = float64(a.Agg.Hits) / float64(a.Agg.Candidates)
				st.RefineRatio = float64(a.Agg.Remaining) / float64(a.Agg.Candidates)
			}
			if i < len(ms) {
				rs := wireRebuildStats(ms[i])
				st.Maintain = &rs
			}
			if i < len(cms) && cms[i] != nil {
				cm := wireCostModel(*cms[i])
				st.CostModel = &cm
			}
			out[i] = st
		}
		return out
	}
}

// ServeSharded is Serve over a scatter-gather sharded engine: results are
// bit-identical to the unsharded engine, and /stats and /metrics carry a
// "shards" array with each shard's load, cache fill and I/O.
func ServeSharded(se *Sharded, dim int) http.Handler {
	return ServeShardedWith(se, dim, ServeOptions{})
}

// ServeShardedWith is ServeSharded with explicit lifecycle options.
func ServeShardedWith(se *Sharded, dim int, opt ServeOptions) http.Handler {
	h := server.New(engineSearcher{search: se.SearchCtx, batch: se.SearchBatchCtx}, opt.config(dim))
	h.SetShardStats(wireShardStats(se, nil, nil))
	h.SetIOStats(wireIOStats(se.DiskStats))
	return h
}

// ServeShardedMaintained is ServeSharded over a per-shard self-maintaining
// engine: each shard's "shards" entry additionally carries its own rebuild
// activity, and /stats gets the aggregate "maintain" object.
func ServeShardedMaintained(m *ShardedMaintainer, dim int) http.Handler {
	return ServeShardedMaintainedWith(m, dim, ServeOptions{})
}

// ServeShardedMaintainedWith is ServeShardedMaintained with explicit
// lifecycle options.
func ServeShardedMaintainedWith(m *ShardedMaintainer, dim int, opt ServeOptions) http.Handler {
	h := server.New(engineSearcher{search: m.SearchCtx, batch: m.SearchBatchCtx}, opt.config(dim))
	h.SetRebuildStats(func() server.RebuildStats { return wireRebuildStats(m.Stats()) })
	h.SetShardStats(wireShardStats(m.Sharded(), m.ShardStats, m.CostModels))
	h.SetIOStats(wireIOStats(m.DiskStats))
	if adaptive := m.CostModels(); len(adaptive) > 0 && adaptive[0] != nil {
		// Top-level block: a cross-shard summary (counters summed, ratios
		// averaged over adaptive shards, τ zeroed when shards disagree); the
		// authoritative per-shard telemetry rides in the shards array.
		h.SetCostModelStats(func() server.CostModelStats {
			return mergeShardCostModels(m.CostModels())
		})
	}
	return h
}

// mergeShardCostModels folds per-shard watchdog snapshots into one summary
// block for the top-level /metrics costmodel object.
func mergeShardCostModels(cms []*costmodel.MonitorSnapshot) server.CostModelStats {
	var out server.CostModelStats
	n := 0
	for _, s := range cms {
		if s == nil {
			continue
		}
		cm := wireCostModel(*s)
		if n == 0 {
			out.Tau = cm.Tau
			out.RecommendedTau = cm.RecommendedTau
		} else {
			if out.Tau != cm.Tau {
				out.Tau = 0
			}
			if out.RecommendedTau != cm.RecommendedTau {
				out.RecommendedTau = 0
			}
		}
		out.ObservedRhoHit += cm.ObservedRhoHit
		out.ObservedRhoRefine += cm.ObservedRhoRefine
		out.PredictedRhoHit += cm.PredictedRhoHit
		out.PredictedRhoRefine += cm.PredictedRhoRefine
		out.PredictedCrefine += cm.PredictedCrefine
		out.BestCrefine += cm.BestCrefine
		out.Improvement += cm.Improvement
		out.PendingWindows += cm.PendingWindows
		out.Windows += cm.Windows
		out.Retunes += cm.Retunes
		n++
	}
	if n > 1 {
		f := float64(n)
		out.ObservedRhoHit /= f
		out.ObservedRhoRefine /= f
		out.PredictedRhoHit /= f
		out.PredictedRhoRefine /= f
		out.PredictedCrefine /= f
		out.BestCrefine /= f
		out.Improvement /= f
	}
	return out
}
