// Package disk is the storage substrate. It models the paper's experimental
// setup — datasets and index leaf pages resident on a hard disk with the OS
// cache disabled, 4 KB blocks — while remaining deterministic on any machine:
// every physical page read is counted and charged a configurable simulated
// seek latency Tio, so the paper's refinement-cost model
// Trefine ≈ Tio · Crefine (Section 2.2) can be reported exactly, alongside
// real wall-clock time.
package disk

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// DefaultPageSize matches the paper's 4 KB block size.
const DefaultPageSize = 4096

// DefaultTio is the simulated cost of one random page read. 5 ms is a
// conventional HDD seek+rotational latency; with candidate sets of ~100
// points it reproduces the paper's ~0.5 s EXACT refinement times.
const DefaultTio = 5 * time.Millisecond

// Stats is a snapshot of a device's I/O counters.
type Stats struct {
	PageReads  int64
	PageWrites int64
}

// SimulatedIO returns the simulated I/O time for s under latency tio.
func (s Stats) SimulatedIO(tio time.Duration) time.Duration {
	return time.Duration(s.PageReads) * tio
}

// Device is a page-granular file. All reads go through ReadPage so that the
// I/O accounting is airtight. A Device is safe for concurrent use.
type Device struct {
	f        *os.File
	pageSize int
	tio      time.Duration

	reads  atomic.Int64
	writes atomic.Int64
	pages  atomic.Int64 // high-water page count
}

// Create creates (truncating) a page device at path.
func Create(path string, pageSize int, tio time.Duration) (*Device, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small", pageSize)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &Device{f: f, pageSize: pageSize, tio: tio}, nil
}

// Open opens an existing device created with the same page size.
func Open(path string, pageSize int, tio time.Duration) (*Device, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small", pageSize)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: %w", err)
	}
	d := &Device{f: f, pageSize: pageSize, tio: tio}
	d.pages.Store((st.Size() + int64(pageSize) - 1) / int64(pageSize))
	return d, nil
}

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Tio returns the simulated per-read latency.
func (d *Device) Tio() time.Duration { return d.tio }

// NumPages returns the number of pages ever written.
func (d *Device) NumPages() int { return int(d.pages.Load()) }

// ReadPage reads page n into buf (len >= PageSize) and counts one physical
// read. Short pages at the end of file are zero-padded.
func (d *Device) ReadPage(n int, buf []byte) error {
	if len(buf) < d.pageSize {
		return fmt.Errorf("disk: buffer %d smaller than page %d", len(buf), d.pageSize)
	}
	if n < 0 || n >= d.NumPages() {
		return fmt.Errorf("disk: page %d out of range [0,%d)", n, d.NumPages())
	}
	d.reads.Add(1)
	got, err := d.f.ReadAt(buf[:d.pageSize], int64(n)*int64(d.pageSize))
	if err != nil && got > 0 {
		// Tail page shorter than pageSize: pad with zeros.
		for i := got; i < d.pageSize; i++ {
			buf[i] = 0
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("disk: read page %d: %w", n, err)
	}
	return nil
}

// WritePage writes buf (exactly PageSize bytes) as page n.
func (d *Device) WritePage(n int, buf []byte) error {
	if len(buf) != d.pageSize {
		return fmt.Errorf("disk: write buffer %d != page size %d", len(buf), d.pageSize)
	}
	if n < 0 {
		return fmt.Errorf("disk: negative page %d", n)
	}
	d.writes.Add(1)
	if _, err := d.f.WriteAt(buf, int64(n)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("disk: write page %d: %w", n, err)
	}
	for {
		cur := d.pages.Load()
		if int64(n) < cur {
			return nil
		}
		if d.pages.CompareAndSwap(cur, int64(n)+1) {
			return nil
		}
	}
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	return Stats{PageReads: d.reads.Load(), PageWrites: d.writes.Load()}
}

// ResetStats zeroes the counters (typically between queries or experiments).
func (d *Device) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}

// Close closes the underlying file.
func (d *Device) Close() error { return d.f.Close() }
