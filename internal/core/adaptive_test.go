package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"exploitbit/internal/dataset"
	"exploitbit/internal/disk"
	"exploitbit/internal/shard"
)

// The adaptive-τ suite. Every test here matches `-run Adaptive`, which is the
// CI race-focus filter for the watchdog loop (adaptive retune vs concurrent
// searches vs quarantine recovery).

// adaptiveCfg is the drift-world configuration the probe landed on: at an
// 8 KiB budget the pool-A workload's optimal τ is 5 (capacity-bound), while a
// concentrated hot set from pool B moves the optimum to 8 (the Ndom=256 cap)
// with a predicted C_refine improvement around 70% — far above the threshold.
// At a 4 KiB budget even the hot set recommends τ = 5, so a watchdog serving
// τ = 5 never accumulates evidence.
func adaptiveCfg(budget int64) Config {
	return Config{Method: HCO, CacheBytes: budget, Tau: 5}
}

// TestAdaptiveNoDriftBitIdentical: with the watchdog armed but the workload
// steady — and the serving τ already the model's recommendation — the
// adaptive maintainer must behave bit-identically to a plain engine built
// from the same profile: same ids, same per-query stats (including
// PageReads), zero retunes, zero rebuilds. The evaluation goroutine only ever
// re-profiles windows; it never touches the serving path.
func TestAdaptiveNoDriftBitIdentical(t *testing.T) {
	ds, pf, cands, poolA, _ := driftWorld(t)
	const k = 5
	cfg := adaptiveCfg(4 << 10)
	m, err := NewMaintainer(pf, ds, cands, poolA, k, cfg, MaintainOptions{
		WindowSize: 64, AdaptiveTau: true, RetuneWindows: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(pf, BuildProfile(ds, cands, poolA, k), cands, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 256; i++ {
		q := poolA[i%len(poolA)]
		gotIDs, gotSt, err := m.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs, wantSt, err := ref.SearchCtx(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(gotIDs, wantIDs) {
			t.Fatalf("q%d: ids %v != %v", i, gotIDs, wantIDs)
		}
		if d := diffStats(wantSt, gotSt); d != "" {
			t.Fatalf("q%d: stats diverged: %s", i, d)
		}
	}
	m.Close() // waits out any in-flight window evaluation

	st := m.Stats()
	if st.Retunes != 0 {
		t.Fatalf("steady workload retuned %d times", st.Retunes)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("steady workload rebuilt %d times", st.Rebuilds)
	}
	if st.Tau != cfg.Tau {
		t.Fatalf("τ moved to %d on a steady workload", st.Tau)
	}
	cm, ok := m.CostModel()
	if !ok {
		t.Fatal("adaptive maintainer reports no cost model")
	}
	if cm.Windows < 1 {
		t.Fatal("watchdog never evaluated a window")
	}
	if cm.Retunes != 0 || cm.PendingWindows != 0 {
		t.Fatalf("watchdog accumulated evidence on a steady workload: %+v", cm)
	}
	if cm.ObservedRhoHit <= 0 || cm.ObservedRhoHit > 1 {
		t.Fatalf("observed ρ_hit out of range: %v", cm.ObservedRhoHit)
	}
}

// TestAdaptiveRetuneOnDriftLowersPageReads is the acceptance path: the hot
// set collapses onto a few pool-B queries, the watchdog sees the model
// recommend a larger τ with a big predicted C_refine cut, a retune rebuild
// lands — and the retuned engine measures strictly fewer PageReads on the hot
// set than a static-τ maintainer given the same traffic (and an equally fresh
// cache, so τ is the only difference).
func TestAdaptiveRetuneOnDriftLowersPageReads(t *testing.T) {
	ds, pf, cands, poolA, poolB := driftWorld(t)
	const k = 5
	cfg := adaptiveCfg(8 << 10)
	opt := MaintainOptions{WindowSize: 16, MinQueriesBetweenRebuilds: 16, RetuneWindows: 2}
	aopt := opt
	aopt.AdaptiveTau = true

	adaptive, err := NewMaintainer(pf, ds, cands, poolA, k, cfg, aopt)
	if err != nil {
		t.Fatal(err)
	}
	defer adaptive.Close()
	static, err := NewMaintainer(pf, ds, cands, poolA, k, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()

	feed := func(m *Maintainer, pool [][]float32, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, _, err := m.Search(pool[i%len(pool)], k); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase A: the trained workload, both engines healthy at τ=5.
	feed(adaptive, poolA, 64)
	feed(static, poolA, 64)

	// Phase B: the hot set concentrates on 8 pool-B queries. Keep feeding the
	// adaptive engine until the watchdog's retune rebuild lands (the ordinary
	// drift rebuild fires first and composes with it — it keeps τ=5, then the
	// watchdog sees the refreshed cache still lose to τ=8 on the hot set).
	hot := poolB[:8]
	deadline := time.Now().Add(60 * time.Second)
	for adaptive.Stats().Retunes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never retuned; stats %+v", adaptive.Stats())
		}
		feed(adaptive, hot, 16)
	}
	waitRebuildIdle(t, adaptive)
	ast := adaptive.Stats()
	if ast.Retunes < 1 {
		t.Fatalf("Retunes = %d after retune observed", ast.Retunes)
	}
	if ast.Tau <= cfg.Tau {
		t.Fatalf("retune kept τ at %d (started at %d, hot set wants more bits)", ast.Tau, cfg.Tau)
	}
	cm, ok := adaptive.CostModel()
	if !ok || cm.Retunes < 1 {
		t.Fatalf("cost-model telemetry missed the retune: %+v", cm)
	}
	if cm.Tau != ast.Tau {
		t.Fatalf("monitor τ %d != serving τ %d", cm.Tau, ast.Tau)
	}

	// Give the static maintainer the same hot traffic, then force a rebuild
	// from its (pure hot-set) window so its cache content is just as fresh as
	// the adaptive engine's — only τ differs.
	feed(static, hot, 200)
	waitRebuildIdle(t, static)
	if err := static.ForceRebuild(k); err != nil {
		t.Fatal(err)
	}
	if sst := static.Stats(); sst.Tau != cfg.Tau {
		t.Fatalf("static maintainer moved τ to %d", sst.Tau)
	}

	// Measure PageReads engine-to-engine (not through the maintainers, so the
	// measurement itself cannot trigger rebuilds mid-pass).
	measure := func(e *Engine) int64 {
		t.Helper()
		var total int64
		for i := 0; i < 64; i++ {
			_, st, err := e.SearchCtx(context.Background(), hot[i%len(hot)], k)
			if err != nil {
				t.Fatal(err)
			}
			total += st.PageReads
		}
		return total
	}
	adReads := measure(adaptive.Engine())
	stReads := measure(static.Engine())
	if adReads >= stReads {
		t.Fatalf("adaptive engine reads %d pages, static %d — retune did not pay", adReads, stReads)
	}
	t.Logf("hot-set PageReads over 64 queries: adaptive(τ=%d) %d vs static(τ=%d) %d",
		ast.Tau, adReads, cfg.Tau, stReads)
}

// driftShardSpecs shards the drift world's dataset round-robin and
// materializes one point file per shard.
func driftShardSpecs(t testing.TB, ds *dataset.Dataset, n int) ([]ShardSpec, []int32, []int32) {
	t.Helper()
	p, err := shard.Build(ds, n, shard.RoundRobin, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specs := make([]ShardSpec, 0, p.N)
	for s := 0; s < p.N; s++ {
		sds := p.SubDataset(ds, s)
		pf, err := disk.BuildPointFile(filepath.Join(dir, fmt.Sprintf("pf%d", s)), sds, nil, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pf.Close() })
		specs = append(specs, ShardSpec{PF: pf, DS: sds, GlobalIDs: p.Shards[s]})
	}
	return specs, p.Owner, p.Local
}

// TestAdaptiveShardedRetuneQuarantineRace is the race-focus composition test:
// per-shard watchdogs retune independently under concurrent search load, and
// a mid-run permanent storage failure on one shard (degraded-mode serving)
// quarantines, rebuilds and returns it to service — all three rebuild
// triggers (drift, retune, quarantine) share the per-shard RCU machinery and
// must compose without races or lost shards.
func TestAdaptiveShardedRetuneQuarantineRace(t *testing.T) {
	ds, _, cands, poolA, poolB := driftWorld(t)
	const k = 5
	const nShards = 2
	specs, owner, local := driftShardSpecs(t, ds, nShards)
	prof := BuildProfile(ds, cands, poolA, k)
	// 16 KiB total → 8 KiB per shard: each shard sees the probe's retune
	// physics on its half of the candidates.
	m, err := NewShardedMaintainer(specs, owner, local, prof, cands, k,
		adaptiveCfg(16<<10), MaintainOptions{
			WindowSize: 16, MinQueriesBetweenRebuilds: 16,
			AdaptiveTau: true, RetuneWindows: 2,
		})
	if err != nil {
		t.Fatal(err)
	}
	m.Sharded().SetDegradedOK(true)

	hot := poolB[:8]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := m.SearchCtx(context.Background(), hot[(g+i)%len(hot)], k); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(g)
	}

	// Wait for at least one shard's watchdog to retune under load.
	deadline := time.Now().Add(60 * time.Second)
	for m.Stats().Retunes == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("no shard ever retuned; stats %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Now break shard storage while searches and retunes are in flight; the
	// shard must quarantine, then recover once the device is repaired.
	const bad = 1
	failAllReads(specs[bad].PF)
	time.Sleep(20 * time.Millisecond)
	specs[bad].PF.SetFaults(nil)
	recovered := time.Now().Add(30 * time.Second)
	for m.Sharded().Quarantined(bad) {
		if time.Now().After(recovered) {
			close(stop)
			wg.Wait()
			t.Fatal("quarantined shard never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	m.Close()

	st := m.Stats()
	if st.Retunes < 1 {
		t.Fatalf("Retunes = %d after retune observed", st.Retunes)
	}
	// Per-shard telemetry: every adaptive shard exposes a monitor snapshot,
	// and retune counts agree between MaintainStats and the monitors.
	var monRetunes int64
	for s, cm := range m.CostModels() {
		if cm == nil {
			t.Fatalf("shard %d has no cost model", s)
		}
		monRetunes += cm.Retunes
		if cm.Tau != m.ShardStats()[s].Tau {
			t.Fatalf("shard %d: monitor τ %d != serving τ %d", s, cm.Tau, m.ShardStats()[s].Tau)
		}
	}
	if int(monRetunes) != st.Retunes {
		t.Fatalf("monitors count %d retunes, stats %d", monRetunes, st.Retunes)
	}
	// The recovered shard still answers.
	for i := 0; i < 8; i++ {
		if _, _, err := m.SearchCtx(context.Background(), hot[i%len(hot)], k); err != nil {
			t.Fatalf("post-recovery search: %v", err)
		}
	}
}
